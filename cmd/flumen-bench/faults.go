package main

// The -faults mode benchmarks the device-health subsystem for tracking in
// BENCH_faults.json: it sweeps phase-drift fault rates over a fabric with
// two faulted partitions and compares MatMul accuracy across three
// configurations — a healthy baseline, an unmonitored mesh that silently
// degrades, and a monitored mesh where the health monitor quarantines and
// recalibrates the faulted partitions. Acceptance: the monitored mesh stays
// within 2× the healthy baseline's max element error while the unmonitored
// mesh exceeds 10×, and a flumend instance with the monitor enabled keeps
// answering 200 throughout.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"flumen"
	"flumen/internal/photonic"
	"flumen/internal/serve"
)

type faultsPoint struct {
	DriftSigma float64 `json:"drift_sigma"`

	// Max element error of one MatMul against the exact product.
	BaselineErr    float64 `json:"baseline_err"`
	UnmonitoredErr float64 `json:"unmonitored_err"`
	MonitoredErr   float64 `json:"monitored_err"`
	// Ratios to the healthy baseline (acceptance: unmonitored > 10,
	// monitored ≤ 2).
	UnmonitoredRatio float64 `json:"unmonitored_ratio"`
	MonitoredRatio   float64 `json:"monitored_ratio"`

	// Monitor activity over the degrade stream.
	Probes         int64 `json:"probes"`
	Quarantines    int64 `json:"quarantines"`
	Recalibrations int64 `json:"recalibrations"`
	RecalFailures  int64 `json:"recal_failures"`

	// Calls/sec over the degrade stream: the monitored run pays for probes
	// and recalibration; the unmonitored run is the no-overhead reference.
	UnmonitoredCallsPerSec float64 `json:"unmonitored_calls_per_sec"`
	MonitoredCallsPerSec   float64 `json:"monitored_calls_per_sec"`
}

type faultsServing struct {
	DriftSigma float64 `json:"drift_sigma"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	NonOK      int     `json:"non_ok"`
	Degraded   bool    `json:"healthz_reported_degraded"`
}

type faultsReport struct {
	Ports        int            `json:"ports"`
	Block        int            `json:"block"`
	Partitions   int            `json:"partitions"`
	Faulted      int            `json:"faulted_partitions"`
	StreamCalls  int            `json:"stream_calls"`
	Dim          int            `json:"dim"`
	Cols         int            `json:"cols"`
	Points       []faultsPoint  `json:"fault_sweep"`
	Serving      faultsServing  `json:"serving"`
	HealthConfig map[string]any `json:"health_config"`
}

// faultsHealthConfig probes aggressively so quarantine latency (in work
// items) stays small relative to the drift rate.
func faultsHealthConfig() flumen.HealthConfig {
	return flumen.HealthConfig{
		ProbeInterval:    1,
		SuspectThreshold: 0.02,
		QuarantineAfter:  1,
		RecalPasses:      10,
		MaxRecalAttempts: 4,
	}
}

// exactMatMul is the float64 reference product.
func exactMatMul(m, x [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = make([]float64, len(x[0]))
		for k, mv := range m[i] {
			for j, xv := range x[k] {
				out[i][j] += mv * xv
			}
		}
	}
	return out
}

func maxElemErr(got, want [][]float64) float64 {
	worst := 0.0
	for i := range want {
		for j := range want[i] {
			if d := got[i][j] - want[i][j]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
	}
	return worst
}

// measureErr runs one MatMul and returns its max element error.
func measureErr(a *flumen.Accelerator, m, x, want [][]float64) (float64, error) {
	got, err := a.MatMul(m, x)
	if err != nil {
		return 0, err
	}
	return maxElemErr(got, want), nil
}

// injectDrift attaches drift injectors to the first `faulted` partitions.
func injectDrift(a *flumen.Accelerator, faulted int, sigma float64) error {
	for i := 0; i < faulted; i++ {
		if err := a.InjectFaults(i, photonic.FaultConfig{DriftSigma: sigma, Seed: int64(100 + i)}); err != nil {
			return err
		}
	}
	return nil
}

// stream drives calls MatMuls to accumulate drift, returning calls/sec.
func stream(a *flumen.Accelerator, m, x [][]float64, calls int) (float64, error) {
	start := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := a.MatMul(m, x); err != nil {
			return 0, err
		}
	}
	return float64(calls) / time.Since(start).Seconds(), nil
}

// freezeDrift stops the drift walk on the faulted partitions: the transient
// fault source abates, but accumulated phase error stays until someone
// recalibrates it.
func freezeDrift(a *flumen.Accelerator, faulted int) {
	for i := 0; i < faulted; i++ {
		if inj := a.FaultInjector(i); inj != nil {
			inj.SetDriftSigma(0)
		}
	}
}

// settleHealth drives scrub calls until the monitor has caught and
// recovered every frozen-but-drifted partition: no partition out of
// service, none in service with a failing last probe.
func settleHealth(a *flumen.Accelerator, m, x [][]float64) error {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := a.MatMul(m, x); err != nil {
			return err
		}
		st := a.HealthStats()
		if st.Degraded() {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		clean := true
		for _, p := range st.Partitions {
			if p.Faulty && p.LastProbeError > st.ProbeThreshold {
				clean = false
				break
			}
		}
		if clean {
			return nil
		}
	}
	return fmt.Errorf("faults: health monitor did not settle within 60s: %+v", a.HealthStats())
}

func runFaultsBench(outPath string, smoke bool) error {
	ports, block, faulted := 64, 8, 2
	streamCalls, dim, cols := 120, 64, 16
	sigmas := []float64{0.005, 0.01, 0.02}
	servingSecs := 2.0
	if smoke {
		streamCalls, sigmas, servingSecs = 40, []float64{0.02}, 0.5
	}
	hcfg := faultsHealthConfig()

	rng := rand.New(rand.NewSource(41))
	m := randMatrix(rng, dim, dim)
	x := randMatrix(rng, dim, cols)
	want := exactMatMul(m, x)

	report := faultsReport{
		Ports: ports, Block: block, Faulted: faulted,
		StreamCalls: streamCalls, Dim: dim, Cols: cols,
		HealthConfig: map[string]any{
			"probe_interval":    hcfg.ProbeInterval,
			"suspect_threshold": hcfg.SuspectThreshold,
			"quarantine_after":  hcfg.QuarantineAfter,
			"recal_passes":      hcfg.RecalPasses,
		},
	}

	// Healthy baseline: quantization noise only, independent of the sweep.
	healthy, err := flumen.NewAccelerator(ports, block)
	if err != nil {
		return err
	}
	report.Partitions = healthy.NumPartitions()
	baseline, err := measureErr(healthy, m, x, want)
	if err != nil {
		return err
	}
	fmt.Printf("healthy baseline: %d partitions, max element error %.4f\n", report.Partitions, baseline)

	for _, sigma := range sigmas {
		// Unmonitored: same faults, nobody watching — accuracy decays as
		// drift accumulates over the stream.
		unmon, err := flumen.NewAccelerator(ports, block)
		if err != nil {
			return err
		}
		if err := injectDrift(unmon, faulted, sigma); err != nil {
			return err
		}
		unmonRate, err := stream(unmon, m, x, streamCalls)
		if err != nil {
			return err
		}
		// The transient fault source abates after the stream; the random-walk
		// phase error it left behind persists, and with nobody watching it is
		// never repaired.
		freezeDrift(unmon, faulted)
		unmonErr, err := measureErr(unmon, m, x, want)
		if err != nil {
			return err
		}

		// Monitored: identical faults under the health monitor.
		mon, err := flumen.NewAccelerator(ports, block)
		if err != nil {
			return err
		}
		if err := mon.EnableHealthMonitor(hcfg); err != nil {
			return err
		}
		if err := injectDrift(mon, faulted, sigma); err != nil {
			return err
		}
		monRate, err := stream(mon, m, x, streamCalls)
		if err != nil {
			return err
		}
		// Same transient: after the fault source abates, the monitor's probes
		// catch the leftover phase error, quarantine the partitions, and
		// background recalibration nulls it — so the measurement sees a fully
		// recovered pool, where the unmonitored mesh is still broken.
		freezeDrift(mon, faulted)
		if err := settleHealth(mon, m, x); err != nil {
			return err
		}
		monErr, err := measureErr(mon, m, x, want)
		if err != nil {
			return err
		}
		st := mon.HealthStats()

		pt := faultsPoint{
			DriftSigma:  sigma,
			BaselineErr: baseline, UnmonitoredErr: unmonErr, MonitoredErr: monErr,
			UnmonitoredRatio: unmonErr / baseline, MonitoredRatio: monErr / baseline,
			Probes: st.Probes, Quarantines: st.Quarantines,
			Recalibrations: st.Recalibrations, RecalFailures: st.RecalFailures,
			UnmonitoredCallsPerSec: unmonRate, MonitoredCallsPerSec: monRate,
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("sigma %.3f: unmonitored err %.4f (%.1f× baseline), monitored err %.4f (%.1f×), %d quarantines, %d recalibrations, %.0f vs %.0f calls/s\n",
			sigma, unmonErr, pt.UnmonitoredRatio, monErr, pt.MonitoredRatio,
			st.Quarantines, st.Recalibrations, unmonRate, monRate)
		if smoke {
			if pt.MonitoredRatio > 2 {
				return fmt.Errorf("faults: monitored error %.4f exceeds 2× baseline %.4f", monErr, baseline)
			}
			if pt.UnmonitoredRatio < 10 {
				return fmt.Errorf("faults: unmonitored error %.4f under 10× baseline %.4f — fault injection too weak", unmonErr, baseline)
			}
			if st.Quarantines == 0 || st.Recalibrations == 0 {
				return fmt.Errorf("faults: monitor never cycled (quarantines %d, recalibrations %d)", st.Quarantines, st.Recalibrations)
			}
		}
	}

	// Serving: a flumend instance with the monitor enabled and the worst
	// sweep drift injected must answer 200 for every request while the
	// monitor quarantines and recovers underneath it.
	serving, err := runFaultsServing(sigmas[len(sigmas)-1], faulted, hcfg, servingSecs)
	if err != nil {
		return err
	}
	report.Serving = serving
	fmt.Printf("serving under faults: %d/%d requests OK, degraded observed: %v\n",
		serving.OK, serving.Requests, serving.Degraded)
	if smoke && serving.NonOK > 0 {
		return fmt.Errorf("faults: %d of %d requests failed while degraded", serving.NonOK, serving.Requests)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runFaultsServing(sigma float64, faulted int, hcfg flumen.HealthConfig, secs float64) (faultsServing, error) {
	out := faultsServing{DriftSigma: sigma}
	cfg := serve.DefaultConfig()
	cfg.Ports, cfg.BlockSize = 32, 8
	cfg.Health = &hcfg
	srv, err := serve.New(cfg)
	if err != nil {
		return out, err
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if err := injectDrift(srv.Accelerator(), faulted, sigma); err != nil {
		return out, err
	}

	rng := rand.New(rand.NewSource(43))
	req := serve.MatMulRequest{M: randMatrix(rng, 16, 16), X: randMatrix(rng, 16, 4)}
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	for time.Now().Before(deadline) {
		resp, err := http.Post(hs.URL+"/v1/matmul", "application/json", bytes.NewReader(body))
		if err != nil {
			return out, err
		}
		resp.Body.Close()
		out.Requests++
		if resp.StatusCode == http.StatusOK {
			out.OK++
		} else {
			out.NonOK++
		}
		if hz, err := http.Get(hs.URL + "/healthz"); err == nil {
			var h serve.HealthResponse
			if json.NewDecoder(hz.Body).Decode(&h) == nil && h.Status == "degraded" {
				out.Degraded = true
			}
			hz.Body.Close()
		}
	}
	return out, nil
}
