package main

// The -engine mode times the accelerator's parallel compute engine and
// weight-program cache directly (no testing.B harness) so the results can
// land in BENCH_engine.json for tracking: serial (1 worker) versus pooled
// MatMul at 64×64 and 256×256 with the cache disabled, and cold versus
// warm-cache Conv2D. It also asserts the engine's determinism guarantee —
// the parallel product must be bitwise-equal to the serial one.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"flumen"
)

type engineMatMulResult struct {
	Size       int     `json:"size"`
	Workers    int     `json:"workers"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	Bitwise    bool    `json:"bitwise_equal"`
}

type engineConvResult struct {
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

type engineReport struct {
	GOMAXPROCS int                  `json:"gomaxprocs"`
	MatMul     []engineMatMulResult `json:"matmul"`
	Conv2D     engineConvResult     `json:"conv2d"`
}

func randMatrix(rng *rand.Rand, r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	return m
}

// timeIt returns the best-of-reps wall time of f in milliseconds.
func timeIt(reps int, f func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

func runEngineBench(outPath string) error {
	report := engineReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	for _, size := range []int{64, 256} {
		rng := rand.New(rand.NewSource(31))
		m := randMatrix(rng, size, size)
		x := randMatrix(rng, size, size)

		serial, err := flumen.NewAccelerator(64, 8)
		if err != nil {
			return err
		}
		serial.SetProgramCacheSize(0)
		serial.SetWorkers(1)
		parallel, err := flumen.NewAccelerator(64, 8)
		if err != nil {
			return err
		}
		parallel.SetProgramCacheSize(0)

		var serialOut, parallelOut [][]float64
		serialMS, err := timeIt(3, func() error {
			var e error
			serialOut, e = serial.MatMul(m, x)
			return e
		})
		if err != nil {
			return err
		}
		parallelMS, err := timeIt(3, func() error {
			var e error
			parallelOut, e = parallel.MatMul(m, x)
			return e
		})
		if err != nil {
			return err
		}
		bitwise := true
		for i := range serialOut {
			for j := range serialOut[i] {
				if serialOut[i][j] != parallelOut[i][j] {
					bitwise = false
				}
			}
		}
		if !bitwise {
			return fmt.Errorf("engine bench: parallel %d×%d product is not bitwise-equal to serial", size, size)
		}
		res := engineMatMulResult{
			Size:       size,
			Workers:    parallel.Workers(),
			SerialMS:   serialMS,
			ParallelMS: parallelMS,
			Speedup:    serialMS / parallelMS,
			Bitwise:    bitwise,
		}
		report.MatMul = append(report.MatMul, res)
		fmt.Printf("MatMul %dx%d: serial %.2f ms, parallel(%d workers) %.2f ms, speedup %.2fx, bitwise-equal %v\n",
			size, size, res.SerialMS, res.Workers, res.ParallelMS, res.Speedup, res.Bitwise)
	}

	// Cold vs warm Conv2D: small spatial extent so block programming
	// dominates and the cache's skipped decompositions show directly.
	rng := rand.New(rand.NewSource(32))
	input := make([][][]float64, 3)
	for c := range input {
		input[c] = make([][]float64, 4)
		for y := range input[c] {
			input[c][y] = make([]float64, 4)
			for xx := range input[c][y] {
				input[c][y][xx] = rng.NormFloat64()
			}
		}
	}
	kernels := make([][][][]float64, 8)
	for k := range kernels {
		kernels[k] = make([][][]float64, 3)
		for c := range kernels[k] {
			kernels[k][c] = make([][]float64, 3)
			for y := range kernels[k][c] {
				kernels[k][c][y] = make([]float64, 3)
				for xx := range kernels[k][c][y] {
					kernels[k][c][y][xx] = rng.NormFloat64()
				}
			}
		}
	}
	a, err := flumen.NewAccelerator(16, 8)
	if err != nil {
		return err
	}
	conv := func() error {
		_, e := a.Conv2D(input, kernels, 1, 1)
		return e
	}
	coldMS, err := timeIt(3, func() error {
		a.SetProgramCacheSize(flumen.DefaultProgramCacheSize) // clear: recompile everything
		return conv()
	})
	if err != nil {
		return err
	}
	if err := conv(); err != nil { // prime
		return err
	}
	warmMS, err := timeIt(3, conv)
	if err != nil {
		return err
	}
	report.Conv2D = engineConvResult{ColdMS: coldMS, WarmMS: warmMS, Speedup: coldMS / warmMS}
	fmt.Printf("Conv2D: cold %.3f ms, warm %.3f ms, speedup %.2fx\n", coldMS, warmMS, report.Conv2D.Speedup)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
