// Command flumen-scaling regenerates the device-level scaling studies of
// Fig. 12: (a) laser power versus MRR thru-port loss and wavelength count
// for the OptBus and Flumen topologies, (b) the computation-energy
// comparison between the Flumen MZIM and an energy-efficient approximate
// electrical MAC unit, and (c) per-MAC energy as a function of MZIM
// dimension and wavelength count.
//
// Usage:
//
//	flumen-scaling [-laser] [-compute] [-mac]
//
// With no flags all three studies print.
package main

import (
	"flag"
	"fmt"

	"flumen/internal/energy"
	"flumen/internal/optics"
)

func main() {
	laser := flag.Bool("laser", false, "Fig. 12a laser power scaling only")
	compute := flag.Bool("compute", false, "Fig. 12b compute energy scaling only")
	mac := flag.Bool("mac", false, "Fig. 12c MAC energy scaling only")
	xtalk := flag.Bool("xtalk", false, "MRR crosstalk / precision analysis only (Sec 6)")
	flag.Parse()
	all := !*laser && !*compute && !*mac && !*xtalk

	if all || *laser {
		fig12a()
	}
	if all || *compute {
		fig12b()
	}
	if all || *mac {
		fig12c()
	}
	if all || *xtalk {
		crosstalk()
	}
}

// crosstalk quantifies the Sec 6 scalability argument: dense MRR banks
// accumulate aggregate crosstalk that bounds analog precision, while the
// receiver physics of the compute path supports ≈8 bits — why Flumen uses
// MZI modulation for computation and keeps ring counts per endpoint low.
func crosstalk() {
	fmt.Println("=== MRR crosstalk and analog precision (Sec 6 / Table 1) ===")
	d := optics.DefaultDevices()
	l := optics.DefaultLink()
	fmt.Printf("receiver-physics precision at the compute point (−4 dBm, %.1f GHz Nyquist): %.1f bits (Table 1: 8)\n",
		l.InputModulationGHz/2, optics.ComputePrecisionBits(d, -4, l))
	fmt.Printf("\n%-10s %-12s %18s %16s\n", "channels", "spacing", "worst xtalk (dB)", "xtalk-limited bits")
	for _, ch := range []int{16, 32, 64} {
		for _, sp := range []float64{0.4, 0.8, 1.6} {
			x := optics.NewWDMDemux(ch, sp).WorstAggregateCrosstalkDB()
			fmt.Printf("%-10d %-12.1f %18.1f %16.1f\n", ch, sp, x, optics.CrosstalkLimitedBits(x))
		}
	}
	fmt.Println("\ndense ring banks cannot sustain 8-bit analog signalling; MZI meshes avoid the resonant crosstalk entirely")
}

func fig12a() {
	fmt.Println("=== Fig. 12a: laser power vs MRR thru loss and wavelength count (16 nodes) ===")
	d := optics.DefaultDevices()
	const waveguideCM = 1.0
	fmt.Printf("%-10s %-6s %16s %16s %10s\n", "thru (dB)", "λs", "OptBus (mW)", "Flumen (mW)", "ratio")
	for _, loss := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.1} {
		for _, p := range []int{16, 32, 64} {
			dd := d
			dd.MRRThruLossDB = loss
			ob := optics.OptBusLaserPowerMW(dd, 16, p, waveguideCM)
			fl := optics.FlumenLaserPowerMW(dd, 16, p, waveguideCM)
			fmt.Printf("%-10.2f %-6d %16.4f %16.6f %9.0f×\n", loss, p, ob, fl, ob/fl)
		}
	}
	dd := d
	dd.MRRThruLossDB = 0.1
	ob := optics.OptBusLaserPowerMW(dd, 16, 32, waveguideCM)
	fl := optics.FlumenLaserPowerMW(dd, 16, 32, waveguideCM)
	fmt.Printf("\nAt 32 λ and 0.1 dB thru loss: OptBus %.2f mW, Flumen %.4f mW (%.0f×; paper: 32.3 mW vs 429.6 µW = 75×)\n",
		ob, fl, ob/fl)
	fmt.Println("Loss budgets at that point:")
	fmt.Printf("  OptBus worst-case loss: %.1f dB (∝ k·p)\n", optics.OptBusWorstCaseLossDB(dd, 16, 32, waveguideCM))
	fmt.Printf("  Flumen worst-case loss: %.1f dB (∝ k/2 + 2p)\n\n", optics.FlumenWorstCaseLossDB(dd, 16, 32, waveguideCM))
}

func fig12b() {
	fmt.Println("=== Fig. 12b: compute energy, Flumen MZIM vs 8-bit approximate electrical MAC ===")
	p := energy.Default()
	fmt.Printf("%-8s %-6s %14s %14s %8s\n", "matrix", "vecs", "elec (pJ)", "Flumen (pJ)", "gain")
	for _, n := range []int{4, 8, 16} {
		for _, v := range []int{1, 2, 4, 8} {
			e := p.ElecMatMulPJ(n, v)
			f := p.FlumenComputePJ(n, v)
			fmt.Printf("%2d×%-5d %-6d %14.1f %14.1f %7.2f×\n", n, n, v, e, f, e/f)
		}
	}
	fmt.Println("\npaper anchors: 8×8/4v: 69.2 vs 33.8 pJ (2×); 16×16/8v: 554 vs 82 pJ (~7×)")
	fmt.Println("\n64×64 MZIM (beyond the Fig. 12b axis):")
	for _, v := range []int{1, 4, 8} {
		e := p.ElecMatMulPJ(64, v)
		f := p.FlumenComputePJ(64, v)
		fmt.Printf("  %d MVM: Flumen %.2f nJ, gain %.1f× (paper: %.2f nJ / %s)\n",
			v, f/1000, e/f, []float64{0.62, 1.32, 2.24}[map[int]int{1: 0, 4: 1, 8: 2}[v]],
			[]string{"1.8×", "3.4×", "4.0×"}[map[int]int{1: 0, 4: 1, 8: 2}[v]])
	}
	fmt.Println()
}

func fig12c() {
	fmt.Println("=== Fig. 12c: energy per MAC vs MZIM dimension and wavelength count ===")
	p := energy.Default()
	fmt.Printf("%-8s", "dim\\λ")
	lambdas := []int{1, 2, 4, 8, 16}
	for _, v := range lambdas {
		fmt.Printf(" %9d", v)
	}
	fmt.Println("   (pJ/MAC)")
	for _, n := range []int{4, 8, 16, 32, 64} {
		fmt.Printf("%-8d", n)
		for _, v := range lambdas {
			fmt.Printf(" %9.4f", p.FlumenMACEnergyPJ(n, v))
		}
		fmt.Println()
	}
	fmt.Printf("\nelectrical baseline: %.2f pJ/MAC (0.75 mW approximate multiplier at 2.5 GHz)\n", p.ElecMACPJ)
}
