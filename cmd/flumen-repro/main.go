// Command flumen-repro regenerates the paper's entire evaluation in one
// run and writes a markdown report: Fig. 1 utilization, Fig. 11 saturation
// summary, Figs. 12a/b/c scaling, Figs. 13/14/15 full-system results with
// geometric means, Sec 5.1 area, and the Sec 3.4 scheduler sensitivity —
// the measured side of EXPERIMENTS.md.
//
// Usage:
//
//	flumen-repro [-o report.md] [-scale n]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"flumen"
	"flumen/internal/core"
	"flumen/internal/energy"
	"flumen/internal/noc"
	"flumen/internal/optics"
	"flumen/internal/workload"
)

func main() {
	out := flag.String("o", "", "write the report to this file (default stdout)")
	scale := flag.Int("scale", 1, "linear workload shrink factor (1 = paper scale)")
	csvPath := flag.String("csv", "", "also write the full benchmark×topology grid as CSV")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	report(w, *scale)
	if *csvPath != "" {
		if err := writeCSV(*csvPath, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeCSV dumps the full suite grid with one row per (benchmark,
// topology) pair for downstream plotting.
func writeCSV(path string, scale int) error {
	s, err := flumen.RunSuite(flumen.DefaultConfig(), scale)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	defer cw.Flush()
	header := []string{"benchmark", "topology", "cycles", "seconds",
		"core_pj", "l1i_pj", "l1d_pj", "l2_pj", "l3_pj", "dram_pj", "nop_pj",
		"total_pj", "edp_js", "link_util", "offloads_granted", "reprograms", "tag_reuses"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range s.Benchmarks {
		for _, topo := range flumen.Topologies() {
			r := s.Results[b][topo]
			e := r.Energy
			row := []string{
				b, topo,
				fmt.Sprint(r.Cycles), fmt.Sprintf("%.9g", r.Seconds),
				fmt.Sprintf("%.0f", e.CorePJ), fmt.Sprintf("%.0f", e.L1iPJ),
				fmt.Sprintf("%.0f", e.L1dPJ), fmt.Sprintf("%.0f", e.L2PJ),
				fmt.Sprintf("%.0f", e.L3PJ), fmt.Sprintf("%.0f", e.DRAMPJ),
				fmt.Sprintf("%.0f", e.NoPPJ), fmt.Sprintf("%.0f", e.TotalPJ()),
				fmt.Sprintf("%.6g", r.EDPJouleSeconds),
				fmt.Sprintf("%.5f", r.AvgLinkUtilization),
				fmt.Sprint(r.OffloadsGranted), fmt.Sprint(r.Reprograms), fmt.Sprint(r.TagReuses),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}

func report(w io.Writer, scale int) {
	fmt.Fprintln(w, "# Flumen reproduction report")
	fmt.Fprintf(w, "\nWorkload scale: 1/%d of paper scale.\n", scale)

	fig1(w, scale)
	fig11(w)
	fig12(w)
	figs131415(w, scale)
	sec51(w)
	sec34(w, scale)
}

func fig1(w io.Writer, scale int) {
	fmt.Fprintln(w, "\n## Fig. 1 — link utilization vs WDM provisioning")
	fmt.Fprintln(w, "\n| benchmark | λs | avg link util |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, name := range []string{"ImageBlur", "VGG16FC"} {
		for _, lambdas := range []int{16, 32, 64} {
			var wl workload.Workload
			for _, cand := range workload.ScaledAll(scale) {
				if cand.Name() == name {
					wl = cand
				}
			}
			cfg := flumen.DefaultConfig()
			cfg.Wavelengths = lambdas
			res, err := flumen.RunWorkload(wl, "Flumen-I", cfg)
			if err != nil {
				fmt.Fprintf(w, "| %s | %d | error: %v |\n", name, lambdas, err)
				continue
			}
			fmt.Fprintf(w, "| %s | %d | %.2f%% |\n", name, lambdas, 100*res.AvgLinkUtilization)
		}
	}
}

func fig11(w io.Writer) {
	fmt.Fprintln(w, "\n## Fig. 11 — synthetic traffic (uniform): zero-load latency and saturation")
	np := core.DefaultNetworkParams()
	mk := map[string]func() noc.Network{
		"Ring":   func() noc.Network { return noc.NewRing(np.Nodes, np.RingWidthBits, np.BufPackets) },
		"Mesh":   func() noc.Network { return noc.NewMesh(4, 4, np.MeshWidthBits, np.BufPackets) },
		"OptBus": func() noc.Network { return noc.NewOptBus(np.Nodes, np.BusChannels, np.BusWidthBits) },
		"Flumen": func() noc.Network { return noc.NewMZIM(np.Nodes, np.MZIMWidthBits, np.MZIMSetupCycles) },
	}
	cfg := noc.DefaultRunConfig()
	cfg.MeasureCycles = 6000
	rates := []float64{0.002, 0.01, 0.04, 0.08, 0.12, 0.16, 0.2, 0.25, 0.32, 0.4, 0.5}
	fmt.Fprintln(w, "\n| topology | zero-load latency | saturation (Gbps/node) |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, name := range []string{"Ring", "Mesh", "OptBus", "Flumen"} {
		sweep := noc.LoadSweep(mk[name], noc.Uniform(np.Nodes), rates, cfg)
		zero := sweep[0].AvgLatency
		sat := "not reached"
		for _, r := range sweep {
			if r.Saturated {
				sat = fmt.Sprintf("%.0f", r.OfferedGbps)
				break
			}
		}
		fmt.Fprintf(w, "| %s | %.1f cyc | %s |\n", name, zero, sat)
	}
}

func fig12(w io.Writer) {
	d := optics.DefaultDevices()
	p := energy.Default()
	fmt.Fprintln(w, "\n## Fig. 12a — laser power at 32 λ, 0.1 dB MRR thru loss")
	ob := optics.OptBusLaserPowerMW(d, 16, 32, 1)
	fl := optics.FlumenLaserPowerMW(d, 16, 32, 1)
	fmt.Fprintf(w, "\nOptBus %.3g mW vs Flumen %.3g mW → %.0f× (paper: 32.3 mW vs 0.43 mW = 75×; see EXPERIMENTS.md D4)\n", ob, fl, ob/fl)

	fmt.Fprintln(w, "\n## Fig. 12b — compute energy anchors")
	fmt.Fprintln(w, "\n| point | elec (pJ) | Flumen (pJ) | gain |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, tc := range []struct{ n, v int }{{8, 4}, {16, 8}, {64, 1}, {64, 4}, {64, 8}} {
		e := p.ElecMatMulPJ(tc.n, tc.v)
		f := p.FlumenComputePJ(tc.n, tc.v)
		fmt.Fprintf(w, "| %d×%d, %d vec | %.1f | %.1f | %.2f× |\n", tc.n, tc.n, tc.v, e, f, e/f)
	}

	fmt.Fprintln(w, "\n## Fig. 12c — pJ/MAC by mesh size and λ")
	fmt.Fprintln(w, "\n| dim | 1 λ | 8 λ |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, n := range []int{8, 16, 32, 64} {
		fmt.Fprintf(w, "| %d | %.4f | %.4f |\n", n, p.FlumenMACEnergyPJ(n, 1), p.FlumenMACEnergyPJ(n, 8))
	}
}

func figs131415(w io.Writer, scale int) {
	s, err := flumen.RunSuite(flumen.DefaultConfig(), scale)
	if err != nil {
		fmt.Fprintf(w, "\nsuite error: %v\n", err)
		return
	}
	fmt.Fprintln(w, "\n## Figs. 13/14/15 — full-system results (Flumen-A vs Mesh)")
	fmt.Fprintln(w, "\n| benchmark | speedup | energy gain | EDP gain |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, b := range s.Benchmarks {
		fa := s.Results[b]["Flumen-A"]
		mesh := s.Results[b]["Mesh"]
		fmt.Fprintf(w, "| %s | %.2f× | %.2f× | %.1f× |\n",
			b, fa.SpeedupOver(mesh), fa.EnergyGainOver(mesh), fa.EDPGainOver(mesh))
	}
	fmt.Fprintf(w, "| **geomean** | **%.2f×** | **%.2f×** | **%.1f×** |\n",
		s.GeomeanSpeedup("Mesh"), s.GeomeanEnergyGain("Mesh"), s.GeomeanEDPGain("Mesh"))
	fmt.Fprintln(w, "\npaper geomeans: 3.6× / 2.5× / 9.3×")
}

func sec51(w io.Writer) {
	a := energy.DefaultArea()
	fmt.Fprintln(w, "\n## Sec 5.1 — area")
	fmt.Fprintf(w, "\n8×8 MZIM %.2f mm², +controller %.2f mm², Flumen system %.2f mm², 64×64 MZIM %.1f mm²\n",
		a.MZIMAreaMM2(8), a.FlumenInterposerMM2(8), a.FlumenSystemMM2(16, 8), a.MZIMAreaMM2(64))
}

func sec34(w io.Writer, scale int) {
	fmt.Fprintln(w, "\n## Sec 3.4 — scheduler sensitivity (ResNet50 Conv3, Flumen-A)")
	var wl workload.Workload
	for _, cand := range workload.ScaledAll(scale * 2) {
		if cand.Name() == "ResNet50Conv3" {
			wl = cand
		}
	}
	base := flumen.DefaultConfig()
	baseline, err := flumen.RunWorkload(wl, "Flumen-A", base)
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	fmt.Fprintln(w, "\n| knob | value | runtime vs paper point |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, tau := range []int64{25, 100, 400, 800} {
		cfg := base
		cfg.Tau = tau
		r, err := flumen.RunWorkload(wl, "Flumen-A", cfg)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "| τ | %d | %.2f× |\n", tau, float64(baseline.Cycles)/float64(r.Cycles))
	}
	for _, eta := range []float64{0.05, 0.40, 0.90} {
		cfg := base
		cfg.Eta = eta
		r, err := flumen.RunWorkload(wl, "Flumen-A", cfg)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "| η | %.2f | %.2f× |\n", eta, float64(baseline.Cycles)/float64(r.Cycles))
	}
	for _, zeta := range []float64{0.25, 0.50, 1.0} {
		cfg := base
		cfg.Zeta = zeta
		r, err := flumen.RunWorkload(wl, "Flumen-A", cfg)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "| ζ | %.2f | %.2f× |\n", zeta, float64(baseline.Cycles)/float64(r.Cycles))
	}
}
