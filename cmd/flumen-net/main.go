// Command flumen-net regenerates the synthetic-traffic evaluation of
// Fig. 11 — average packet latency versus offered load for uniform random,
// bit reversal, and shuffle patterns on the electrical ring, electrical
// mesh, optical bus, and Flumen MZIM topologies — and the Sec 5.2 network
// energy comparison.
//
// Usage:
//
//	flumen-net [-pattern name] [-topology name] [-energy] [-measure n]
package main

import (
	"flag"
	"fmt"
	"os"

	"flumen/internal/core"
	"flumen/internal/energy"
	"flumen/internal/noc"
)

func main() {
	patFlag := flag.String("pattern", "", "uniform | bitrev | shuffle (default: all)")
	topoFlag := flag.String("topology", "", "Ring | Mesh | OptBus | Flumen (default: all)")
	energyFlag := flag.Bool("energy", false, "print the Sec 5.2 network energy comparison")
	measure := flag.Int64("measure", 10000, "measurement window in cycles")
	flag.Parse()

	np := core.DefaultNetworkParams()
	nodes := np.Nodes
	mk := map[string]func() noc.Network{
		"Ring":   func() noc.Network { return noc.NewRing(nodes, np.RingWidthBits, np.BufPackets) },
		"Mesh":   func() noc.Network { return noc.NewMesh(4, 4, np.MeshWidthBits, np.BufPackets) },
		"OptBus": func() noc.Network { return noc.NewOptBus(nodes, np.BusChannels, np.BusWidthBits) },
		"Flumen": func() noc.Network { return noc.NewMZIM(nodes, np.MZIMWidthBits, np.MZIMSetupCycles) },
	}
	order := []string{"Ring", "Mesh", "OptBus", "Flumen"}
	patterns := map[string]noc.Pattern{}
	var patOrder []string
	for _, p := range noc.AllPatterns(nodes) {
		patterns[p.Name] = p
		patOrder = append(patOrder, p.Name)
	}

	cfg := noc.DefaultRunConfig()
	cfg.MeasureCycles = *measure
	rates := []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50}

	if *energyFlag {
		printEnergy(mk, order, patterns["uniform"], cfg)
		return
	}

	fmt.Println("=== Fig. 11: average latency vs offered load (16 nodes, matched bisection BW) ===")
	for _, pname := range patOrder {
		if *patFlag != "" && *patFlag != pname {
			continue
		}
		pat, ok := patterns[pname]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown pattern %q\n", pname)
			os.Exit(1)
		}
		fmt.Printf("\n--- pattern: %s ---\n", pname)
		for _, tname := range order {
			if *topoFlag != "" && *topoFlag != tname {
				continue
			}
			fmt.Printf("%s:\n", tname)
			for _, r := range noc.LoadSweep(mk[tname], pat, rates, cfg) {
				fmt.Printf("  %s\n", r)
			}
		}
	}
}

// printEnergy reproduces the Sec 5.2 comparison: network energy across the
// synthetic benchmarks relative to the Ring, at a fixed moderate load.
func printEnergy(mk map[string]func() noc.Network, order []string, pat noc.Pattern, cfg noc.RunConfig) {
	fmt.Println("=== Sec 5.2: network energy on synthetic traffic (relative to Ring) ===")
	p := energy.Default()
	const rate = 0.02
	kindOf := map[string]core.TopologyKind{
		"Ring": core.TopoRing, "Mesh": core.TopoMesh,
		"OptBus": core.TopoOptBus, "Flumen": core.TopoFlumenI,
	}
	energies := map[string]float64{}
	for _, tname := range order {
		res := noc.RunSynthetic(mk[tname](), pat, rate, cfg)
		seconds := float64(res.ElapsedCycles) / (p.CoreClockGHz * 1e9)
		energies[tname] = core.NoPEnergyPJ(kindOf[tname], res.Counters, seconds, 16, p, 0)
	}
	ring := energies["Ring"]
	fmt.Printf("%-8s %14s %12s\n", "topology", "energy (µJ)", "vs Ring")
	for _, tname := range order {
		red := 100 * (1 - energies[tname]/ring)
		fmt.Printf("%-8s %14.3f %10.1f%% reduction\n", tname, energies[tname]/1e6, red)
	}
	fmt.Println("paper: Mesh 77%, OptBus 35%, Flumen 39% reduction vs Ring")
}
