// Command flumen-fabric exercises the dynamic fabric arbiter (Sec 3.2,
// 3.4): the MZIM fabric carries NoP traffic when loaded and is leased out
// as SVD compute sub-meshes when idle. It sweeps offered load, running the
// network-only baseline and the mixed workload (traffic + opportunistic
// compute under lease) side by side, and runs an idle→busy step scenario
// that measures how many cycles reclamation takes against the configured
// cycle-budget SLO.
//
// Usage:
//
//	flumen-fabric [-pattern name] [-rates list] [-budget n] [-smoke]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"flumen/internal/core"
	"flumen/internal/fabric"
	"flumen/internal/fabricrun"
	"flumen/internal/noc"
)

func main() {
	patFlag := flag.String("pattern", "uniform", "traffic pattern (uniform | bitrev | shuffle | bitcomp | transpose | tornado | neighbor)")
	ratesFlag := flag.String("rates", "0.005,0.01,0.02,0.04,0.08,0.12,0.20", "comma-separated offered loads (packets/node/cycle)")
	ports := flag.Int("ports", 64, "fabric port count")
	block := flag.Int("block", 8, "compute partition size")
	budget := flag.Int("budget", 5000, "reclaim cycle-budget SLO")
	stepRate := flag.Float64("step-rate", 0.4, "offered load for the idle→busy step scenario")
	smoke := flag.Bool("smoke", false, "short CI smoke run: assert steady state, zero leaked leases, reclaim within budget")
	flag.Parse()

	np := core.DefaultNetworkParams()
	nodes := np.Nodes

	if *smoke {
		os.Exit(runSmoke(nodes, np))
	}

	pat, ok := findPattern(*patFlag, nodes)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *patFlag)
		os.Exit(1)
	}
	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	base := fabricrun.Options{
		Ports: *ports, Block: *block, Nodes: nodes,
		WidthBits: np.MZIMWidthBits, SetupCycles: np.MZIMSetupCycles,
		Pattern: &pat,
	}
	fcfg := &fabric.Config{ReclaimBudget: *budget}

	fmt.Printf("=== Dynamic fabric: latency vs load, network-only vs mixed (pattern %s, %d nodes, %d partitions) ===\n",
		pat.Name, nodes, *ports / *block)
	fmt.Printf("%-8s %10s %10s %12s %12s %8s %10s %9s\n",
		"rate", "base p50", "mixed p50", "base p99", "mixed p99", "Δavg%", "computeOps", "reclaims")
	for _, rate := range rates {
		bo := base
		bo.Rate = rate
		baseline, err := fabricrun.Run(bo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mo := bo
		mo.Fabric = fcfg
		mo.Compute = true
		mixed, err := fabricrun.Run(mo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		delta := 0.0
		if baseline.AvgLatency > 0 {
			delta = 100 * (mixed.AvgLatency - baseline.AvgLatency) / baseline.AvgLatency
		}
		sat := ""
		if baseline.Saturated || mixed.Saturated {
			sat = " (saturated)"
		}
		fmt.Printf("%-8.3f %10d %10d %12d %12d %+7.1f%% %10d %9d%s\n",
			rate, baseline.P50Latency, mixed.P50Latency, baseline.P99Latency, mixed.P99Latency,
			delta, mixed.ComputeOps, mixed.Fabric.LeasesReclaimed, sat)
	}

	fmt.Printf("\n=== Step scenario: idle → %.2f packets/node/cycle ===\n", *stepRate)
	so := base
	so.Rate = *stepRate
	so.Fabric = fcfg
	so.Compute = true
	so.StepAt = 1000
	so.Warmup = 4000
	step, err := fabricrun.Run(so)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fs := step.Fabric
	fmt.Printf("leases granted %d, preempted %d, reclaimed %d; preempted items %d\n",
		fs.LeasesGranted, fs.LeasesPreempted, fs.LeasesReclaimed, fs.PreemptedItems)
	fmt.Printf("reclaim latency: last %d cycles, max %d cycles (budget %d, violations %d)\n",
		fs.LastReclaimCycles, fs.MaxReclaimCycles, *budget, fs.ReclaimSLOViolations)
	fmt.Printf("compute ops during idle windows: %d; compute-cycles stolen by traffic: %d\n",
		step.ComputeOps, fs.ComputeCyclesStolen)
}

// runSmoke is the CI job: a short mixed sweep plus a step scenario, exiting
// non-zero unless the system reaches steady state with zero leaked leases
// and reclaims within budget.
func runSmoke(nodes int, np core.NetworkParams) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "SMOKE FAIL: "+format+"\n", args...)
		return 1
	}
	fcfg := &fabric.Config{ReclaimBudget: 5000}
	o := fabricrun.Options{
		Ports: 32, Block: 8, Nodes: nodes,
		WidthBits: np.MZIMWidthBits, SetupCycles: np.MZIMSetupCycles,
		Rate:   0.05,
		Warmup: 1000, Measure: 3000, Drain: 15000,
		Fabric: fcfg, Compute: true,
	}
	mixed, err := fabricrun.Run(o)
	if err != nil {
		return fail("mixed run: %v", err)
	}
	if !mixed.SteadyState {
		return fail("mixed run did not reach steady state: %+v", mixed)
	}
	if mixed.LeakedLeases != 0 {
		return fail("%d leases leaked", mixed.LeakedLeases)
	}
	if mixed.Fabric.LeasesGranted == 0 {
		return fail("no compute leases granted at low load")
	}

	so := o
	so.Rate = 0.4
	so.StepAt = 500
	so.Warmup = 2000
	step, err := fabricrun.Run(so)
	if err != nil {
		return fail("step run: %v", err)
	}
	fs := step.Fabric
	if step.LeakedLeases != 0 {
		return fail("step leaked %d leases", step.LeakedLeases)
	}
	if fs.LeasesPreempted == 0 || fs.LeasesReclaimed == 0 {
		return fail("step forced no reclamation: %+v", fs)
	}
	if fs.MaxReclaimCycles > int64(fcfg.ReclaimBudget) || fs.ReclaimSLOViolations != 0 {
		return fail("reclaim overran budget: max %d cycles, budget %d, violations %d",
			fs.MaxReclaimCycles, fcfg.ReclaimBudget, fs.ReclaimSLOViolations)
	}
	if step.ComputeOps == 0 {
		return fail("no opportunistic compute completed")
	}
	fmt.Printf("SMOKE OK: %d grants, %d reclaims (max %d cycles ≤ budget %d), %d compute ops, 0 leaked leases\n",
		fs.LeasesGranted, fs.LeasesReclaimed, fs.MaxReclaimCycles, fcfg.ReclaimBudget, step.ComputeOps)
	return 0
}

func findPattern(name string, nodes int) (noc.Pattern, bool) {
	for _, p := range noc.AllPatterns(nodes) {
		if p.Name == name {
			return p, true
		}
	}
	return noc.Pattern{}, false
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 || math.IsNaN(r) {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		rates = append(rates, r)
	}
	return rates, nil
}
