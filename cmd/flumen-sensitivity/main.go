// Command flumen-sensitivity sweeps the Algorithm 1 scheduler parameters —
// partition evaluation period τ, buffer utilization threshold η, and buffer
// scan depth ζ (Sec 3.4) — reporting runtime, offload grants, and energy
// for a chosen benchmark on Flumen-A. The paper's operating point is
// τ = 100 cycles, η = 40%, ζ = 50%.
//
// Usage:
//
//	flumen-sensitivity [-benchmark name] [-scale n]
package main

import (
	"flag"
	"fmt"
	"os"

	"flumen"
	"flumen/internal/workload"
)

func main() {
	benchFlag := flag.String("benchmark", "ResNet50Conv3", "benchmark to sweep")
	scale := flag.Int("scale", 2, "linear workload shrink factor")
	flag.Parse()

	var w workload.Workload
	for _, cand := range workload.ScaledAll(*scale) {
		if cand.Name() == *benchFlag {
			w = cand
		}
	}
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; options: %v\n", *benchFlag, flumen.Benchmarks())
		os.Exit(1)
	}

	base := flumen.DefaultConfig()
	run := func(cfg flumen.Config) flumen.Result {
		res, err := flumen.RunWorkload(w, "Flumen-A", cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}
	baseline := run(base)
	digital, err := flumen.RunWorkload(w, "Flumen-I", base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark: %s (scale 1/%d)\n", w.Name(), *scale)
	fmt.Printf("Flumen-I (no acceleration): %d cycles\n", digital.Cycles)
	fmt.Printf("Flumen-A at paper point (τ=100, η=0.40, ζ=0.50): %d cycles, %d grants\n\n",
		baseline.Cycles, baseline.OffloadsGranted)

	fmt.Println("=== τ sweep (η=0.40, ζ=0.50) — paper: τ=100 ≈ max pre-saturation latency; τ>170 starves requests ===")
	fmt.Printf("%-8s %10s %10s %12s %10s\n", "τ", "cycles", "grants", "reprograms", "vs base")
	for _, tau := range []int64{25, 50, 100, 170, 250, 400, 800} {
		cfg := base
		cfg.Tau = tau
		r := run(cfg)
		fmt.Printf("%-8d %10d %10d %12d %9.2f×\n", tau, r.Cycles, r.OffloadsGranted, r.Reprograms,
			float64(baseline.Cycles)/float64(r.Cycles))
	}

	fmt.Println("\n=== η sweep (τ=100, ζ=0.50) — paper: η≲30% too strict, η≳55% lets compute block comm ===")
	fmt.Printf("%-8s %10s %10s %10s\n", "η", "cycles", "grants", "vs base")
	for _, eta := range []float64{0.05, 0.15, 0.30, 0.40, 0.55, 0.70, 0.90} {
		cfg := base
		cfg.Eta = eta
		r := run(cfg)
		fmt.Printf("%-8.2f %10d %10d %9.2f×\n", eta, r.Cycles, r.OffloadsGranted,
			float64(baseline.Cycles)/float64(r.Cycles))
	}

	fmt.Println("\n=== ζ sweep (τ=100, η=0.40) — paper: global averaging (ζ=1) hides hot node pairs ===")
	fmt.Printf("%-8s %10s %10s %10s\n", "ζ", "cycles", "grants", "vs base")
	for _, zeta := range []float64{0.125, 0.25, 0.50, 0.75, 1.0} {
		cfg := base
		cfg.Zeta = zeta
		r := run(cfg)
		fmt.Printf("%-8.3f %10d %10d %9.2f×\n", zeta, r.Cycles, r.OffloadsGranted,
			float64(baseline.Cycles)/float64(r.Cycles))
	}
}
