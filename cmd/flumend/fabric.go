package main

import (
	"context"
	"math/rand"
	"time"

	"flumen/internal/fabric"
	"flumen/internal/fabricrun"
	"flumen/internal/noc"
	"flumen/internal/serve"
)

// driveFabricTraffic runs the background NoP side of the dynamic fabric: a
// cycle-accurate MZIM network carrying Bernoulli uniform traffic at the
// configured offered load, feeding per-cycle telemetry to the server's
// arbiter. When the load keeps the network busy, the arbiter reclaims the
// compute partitions and the serving layer sheds requests with 503; when
// the network idles, compute gets the fabric back. Simulated time is paced
// against the wall clock so the loop stays cheap next to request serving.
func driveFabricTraffic(ctx context.Context, srv *serve.Server, rate float64) {
	arb := srv.Fabric()
	fc := arb.Config()
	nodes := fc.Nodes
	net := noc.NewMZIM(nodes, 256, 3)
	pat := noc.Uniform(nodes)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	const cyclesPerWake = 64
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()

	var cycle int64
	var nextID int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for i := 0; i < cyclesPerWake; i++ {
			if rate > 0 {
				for s := 0; s < nodes; s++ {
					if rng.Float64() < rate {
						p := &noc.Packet{ID: nextID, Src: s, Dst: pat.Dest(s, rng), Bits: 640}
						nextID++
						net.Inject(p, cycle)
					}
				}
			}
			net.Step(cycle)
			inj, occ := net.CycleTelemetry()
			arb.Tick(cycle, inj, occ)
			fabricrun.ApplyPortWithdrawal(net, arb.HeldPartitions(), nodes)
			cycle++
		}
		// While reclaiming, slow simulated time down so the engine's workers
		// get wall-clock time to notice preemption within the cycle budget.
		if arb.Mode() == fabric.ModeReclaiming {
			time.Sleep(100 * time.Microsecond)
		}
	}
}
