// Command flumend serves the Flumen photonic accelerator over HTTP/JSON: a
// batching inference server with a bounded admission queue, per-request
// deadlines, Prometheus-style /metrics, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST   /v1/matmul       {"m": [[...]], "x": [[...]], "timeout_ms": 0} or {"model": "name@v1", "x": [[...]]}
//	POST   /v1/conv2d       {"input": [[[...]]], "kernels": [[[[...]]]], "stride": 1, "pad": 0} or by "model"
//	POST   /v1/infer        {"model": "tiny-cnn", "volume": [[[...]]]}
//	POST   /v1/models       register a named model (persisted with -store; prewarmed and pinned)
//	GET    /v1/models       list registered models
//	DELETE /v1/models/{ref} unregister "name@version"
//	GET    /healthz
//	GET    /metrics
//	GET    /debug/requests  recent per-request stage traces, newest first
//	GET    /debug/pprof/    (only with -pprof)
//
// Concurrent matmul requests whose weight matrices are bit-identical are
// coalesced into one partition-wide engine call, so a fleet of clients
// streaming the same model shares a single SVD + Clements compilation via
// the weight-program cache.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flumen"
	"flumen/internal/fabric"
	"flumen/internal/photonic"
	"flumen/internal/serve"
)

func main() {
	cfg := serve.DefaultConfig()
	flag.StringVar(&cfg.Addr, "addr", cfg.Addr, "listen address")
	flag.IntVar(&cfg.Ports, "ports", cfg.Ports, "fabric port count (multiple of 4)")
	flag.IntVar(&cfg.BlockSize, "block", cfg.BlockSize, "compute block size (even, ≤ ports/2)")
	flag.IntVar(&cfg.Workers, "workers", 0, "engine worker count (0 = one per partition)")
	flag.IntVar(&cfg.CacheSize, "cache", 0, "weight-program cache capacity (0 = default, <0 disables)")
	flag.IntVar(&cfg.Precision, "bits", 0, "DAC/ADC bit depth (0 = default 8)")
	flag.IntVar(&cfg.QueueDepth, "queue", cfg.QueueDepth, "admission queue depth")
	flag.IntVar(&cfg.MaxBatchReqs, "max-batch", cfg.MaxBatchReqs, "max requests coalesced per engine call")
	flag.IntVar(&cfg.MaxBatchCols, "max-batch-cols", cfg.MaxBatchCols, "max RHS columns per engine call")
	flag.DurationVar(&cfg.BatchWindow, "batch-window", cfg.BatchWindow, "coalescing window")
	flag.DurationVar(&cfg.DefaultTimeout, "timeout", cfg.DefaultTimeout, "default per-request deadline")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "graceful shutdown budget")
	flag.Int64Var(&cfg.InferSeed, "infer-seed", cfg.InferSeed, "seed for the built-in model weights")
	flag.StringVar(&cfg.NodeID, "node-id", "", "cluster identity echoed as X-Flumen-Node (empty = random)")
	flag.StringVar(&cfg.StoreDir, "store", "", "model-registry store directory (empty = memory-only; models vanish on restart)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", cfg.MaxBodyBytes, "request body size limit in bytes (oversized bodies get 413)")
	fabricOn := flag.Bool("fabric", false, "attach the dynamic fabric arbiter and drive background NoP traffic")
	fabricRate := flag.Float64("fabric-rate", 0.0, "background NoP offered load in packets/node/cycle (with -fabric; 0 = idle network)")
	fabricBudget := flag.Int("fabric-budget", 0, "reclaim cycle-budget SLO (0 = default)")
	healthOn := flag.Bool("health", false, "enable the device-health monitor (probe, quarantine, recalibrate)")
	probeEvery := flag.Int("health-probe-interval", 0, "work items between calibration probes (0 = default)")
	faultDrift := flag.Float64("fault-drift", 0, "demo: inject phase drift of this sigma per step into -fault-parts partitions (implies -health)")
	faultParts := flag.Int("fault-parts", 1, "demo: number of partitions given injected faults (with -fault-drift)")
	flag.BoolVar(&cfg.TraceEnabled, "trace", cfg.TraceEnabled, "trace every request's per-stage latency into /debug/requests and flumend_stage_seconds (off: only X-Flumen-Trace requests are traced)")
	flag.IntVar(&cfg.TraceRing, "trace-ring", cfg.TraceRing, "recent-trace ring size at /debug/requests (0 = default 256)")
	flag.DurationVar(&cfg.SlowRequest, "trace-slow", cfg.SlowRequest, "log a stage breakdown for traced requests slower than this (0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (trusted networks only)")
	mutexFrac := flag.Int("mutex-profile-frac", 0, "runtime mutex-contention sampling rate for /debug/pprof/mutex (0 = off)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime blocking-event sampling rate in ns for /debug/pprof/block (0 = off)")
	flag.Parse()

	cfg.EnablePprof = *pprofOn
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if *fabricOn {
		cfg.Fabric = &fabric.Config{ReclaimBudget: *fabricBudget}
	}
	if *healthOn || *faultDrift > 0 {
		cfg.Health = &flumen.HealthConfig{ProbeInterval: *probeEvery}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("flumend: %v", err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatalf("flumend: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	st := srv.Accelerator().Stats()
	log.Printf("flumend: node %s listening on %s (fabric %d ports, %d partitions of %d, cache %d programs)",
		srv.NodeID(), srv.Addr(), st.Ports, st.Partitions, st.BlockSize, st.Cache.Capacity)
	if cfg.StoreDir != "" {
		rs := srv.Registry().Stats()
		log.Printf("flumend: model registry persisted at %s (%d models loaded, %d awaiting prewarm)",
			cfg.StoreDir, rs.Models, rs.PrewarmPending)
	}
	if arb := srv.Fabric(); arb != nil {
		log.Printf("flumend: dynamic fabric arbiter attached (%d partitions, background load %.3f packets/node/cycle)",
			arb.Partitions(), *fabricRate)
		go driveFabricTraffic(ctx, srv, *fabricRate)
	}
	if cfg.Health != nil {
		log.Printf("flumend: device-health monitor enabled (probe threshold %g)", srv.Accelerator().HealthStats().ProbeThreshold)
	}
	if *pprofOn {
		log.Printf("flumend: pprof mounted at /debug/pprof/ (mutex fraction %d, block rate %d ns)", *mutexFrac, *blockRate)
	}
	if cfg.TraceEnabled {
		log.Printf("flumend: request tracing on (ring %d, slow threshold %s)", cfg.TraceRing, cfg.SlowRequest)
	}
	if *faultDrift > 0 {
		acc := srv.Accelerator()
		n := *faultParts
		if n > st.Partitions {
			n = st.Partitions
		}
		for i := 0; i < n; i++ {
			if err := acc.InjectFaults(i, photonic.FaultConfig{DriftSigma: *faultDrift, Seed: int64(1 + i)}); err != nil {
				log.Fatalf("flumend: %v", err)
			}
		}
		log.Printf("flumend: demo fault injection on %d partition(s), drift sigma %g/step", n, *faultDrift)
	}

	start := time.Now()
	if err := srv.Run(ctx); err != nil {
		log.Fatalf("flumend: %v", err)
	}
	st = srv.Accelerator().Stats()
	log.Printf("flumend: drained cleanly after %s (%d programs, %d λ-batches, %.0f pJ, cache %d/%d hits/misses)",
		time.Since(start).Round(time.Millisecond), st.Programs, st.Batches, st.EnergyPJ, st.Cache.Hits, st.Cache.Misses)
	if arb := srv.Fabric(); arb != nil {
		fs := arb.Stats()
		log.Printf("flumend: fabric saw %d lease grants, %d reclaims (max %d cycles), %d items preempted, %d compute-cycles stolen",
			fs.LeasesGranted, fs.LeasesReclaimed, fs.MaxReclaimCycles, fs.PreemptedItems, fs.ComputeCyclesStolen)
	}
}
