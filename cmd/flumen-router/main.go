// Command flumen-router is the cluster front door: it shards /v1/matmul,
// /v1/conv2d, and /v1/infer across N flumend backends by rendezvous hashing
// over the weight fingerprint, so repeat weights land on the node whose
// weight-program cache already holds the compiled plan.
//
//	flumen-router -addr :8090 -backends http://n0:8080,http://n1:8080
//
// Around the affinity core: active /healthz probing with passive error
// tracking (ejection → probation → reinstatement), budget-bounded retries,
// 503 spill to the next-preferred healthy node, optional hedged requests,
// Prometheus /metrics (flumen_router_*), and graceful drain on SIGTERM.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flumen/internal/cluster"
)

func main() {
	cfg := cluster.DefaultConfig()
	backends := flag.String("backends", "", "comma-separated flumend base URLs (required)")
	flag.StringVar(&cfg.Addr, "addr", cfg.Addr, "listen address")
	flag.StringVar(&cfg.Policy, "policy", cfg.Policy, "routing policy: affinity (rendezvous over weight fingerprints) or random")
	flag.DurationVar(&cfg.ProbeInterval, "probe-interval", cfg.ProbeInterval, "health probe period per backend")
	flag.DurationVar(&cfg.ProbeTimeout, "probe-timeout", cfg.ProbeTimeout, "health probe timeout")
	flag.IntVar(&cfg.FailThreshold, "fail-threshold", cfg.FailThreshold, "consecutive failures that eject a backend")
	flag.DurationVar(&cfg.EjectionTime, "ejection-time", cfg.EjectionTime, "cooldown before an ejected backend may enter probation")
	flag.IntVar(&cfg.ReinstateAfter, "reinstate-after", cfg.ReinstateAfter, "consecutive successes that reinstate a probationary backend")
	flag.IntVar(&cfg.MaxRetries, "retries", cfg.MaxRetries, "max transport-level retries per request")
	flag.Float64Var(&cfg.RetryBudget, "retry-budget", cfg.RetryBudget, "cluster-wide retry tokens earned per request")
	flag.Float64Var(&cfg.RetryBurst, "retry-burst", cfg.RetryBurst, "retry token bucket capacity")
	flag.DurationVar(&cfg.HedgeDelay, "hedge-delay", cfg.HedgeDelay, "duplicate a slow attempt to the runner-up after this delay (0 = off)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", cfg.RequestTimeout, "end-to-end request deadline across all attempts")
	flag.DurationVar(&cfg.AttemptTimeout, "attempt-timeout", cfg.AttemptTimeout, "single backend attempt deadline")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", cfg.MaxBodyBytes, "request body size limit in bytes")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "graceful shutdown budget")
	flag.BoolVar(&cfg.TraceEnabled, "trace", cfg.TraceEnabled, "trace every proxied request (selection, hops, spills, retries) into /debug/requests")
	flag.IntVar(&cfg.TraceRing, "trace-ring", cfg.TraceRing, "recent-trace ring size at /debug/requests (0 = default 256)")
	flag.DurationVar(&cfg.SlowRequest, "trace-slow", cfg.SlowRequest, "log a stage breakdown for traced requests slower than this (0 = off)")
	flag.Parse()

	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			cfg.Backends = append(cfg.Backends, b)
		}
	}
	if len(cfg.Backends) == 0 {
		log.Fatalf("flumen-router: -backends is required (comma-separated flumend base URLs)")
	}

	rt, err := cluster.New(cfg)
	if err != nil {
		log.Fatalf("flumen-router: %v", err)
	}
	if err := rt.Listen(); err != nil {
		log.Fatalf("flumen-router: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("flumen-router: listening on %s, %s routing over %d backends: %s",
		rt.Addr(), cfg.Policy, len(cfg.Backends), strings.Join(cfg.Backends, ", "))
	start := time.Now()
	if err := rt.Run(ctx); err != nil {
		log.Fatalf("flumen-router: %v", err)
	}
	st := rt.Stats()
	ratio := 0.0
	if st.Routed > 0 {
		ratio = float64(st.AffinityHits) / float64(st.Routed)
	}
	log.Printf("flumen-router: drained cleanly after %s (%d routed, affinity ratio %.3f, %d retries, %d spills, %d hedges)",
		time.Since(start).Round(time.Millisecond), st.Routed, ratio, st.Retries, st.Spills, st.Hedges)
}
