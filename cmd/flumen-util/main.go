// Command flumen-util regenerates Fig. 1: photonic link utilization over
// execution for the Image Blur and VGG16 FC applications, with bandwidth
// sensitivity by under-provisioning the WDM link (16, 32, 64 wavelengths ⇔
// 160, 320, 640 Gbps at 10 Gbps modulation).
//
// It also carries the registry management subcommands:
//
//	flumen-util models {register|list|rm} [flags]
//
// Usage:
//
//	flumen-util [-benchmark name] [-scale n] [-trace]
//	flumen-util models register -server http://host:9090 [-file spec.json]
//	flumen-util models list -server http://host:9090
//	flumen-util models rm -server http://host:9090 name@version
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flumen"
	"flumen/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "models" {
		os.Exit(runModels(os.Args[2:]))
	}
	benchFlag := flag.String("benchmark", "", "ImageBlur | VGG16FC (default: both)")
	scale := flag.Int("scale", 1, "linear workload shrink factor")
	trace := flag.Bool("trace", false, "print the windowed utilization trace")
	flag.Parse()

	names := []string{"ImageBlur", "VGG16FC"}
	if *benchFlag != "" {
		names = []string{*benchFlag}
	}
	fmt.Println("=== Fig. 1: photonic link utilization vs WDM provisioning (Flumen-I, 16 nodes) ===")
	fmt.Printf("%-12s %-6s %-12s %14s\n", "benchmark", "λs", "BW (Gbps)", "avg link util")
	for _, name := range names {
		var w workload.Workload
		for _, cand := range workload.ScaledAll(*scale) {
			if cand.Name() == name {
				w = cand
			}
		}
		if w == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(1)
		}
		for _, lambdas := range []int{16, 32, 64} {
			cfg := flumen.DefaultConfig()
			cfg.Wavelengths = lambdas
			cfg.UtilWindow = 500
			res, err := flumen.RunWorkload(w, "Flumen-I", cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-12s %-6d %-12d %13.2f%%\n", name, lambdas, lambdas*10, 100*res.AvgLinkUtilization)
			if *trace {
				fmt.Print(sparkline(res.UtilizationTrace))
			}
		}
		fmt.Println()
	}
	fmt.Println("paper: 64 λ → 5.5% (Blur) / 1.9% (VGG FC); 16 λ → 19.7% / 7.5%")
}

// sparkline renders a utilization trace as coarse text bars.
func sparkline(trace []float64) string {
	if len(trace) == 0 {
		return ""
	}
	const width = 72
	step := (len(trace) + width - 1) / width
	var b strings.Builder
	b.WriteString("  trace: ")
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	for i := 0; i < len(trace); i += step {
		var m float64
		for j := i; j < i+step && j < len(trace); j++ {
			if trace[j] > m {
				m = trace[j]
			}
		}
		idx := int(m * float64(len(glyphs)-1))
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	b.WriteString("\n")
	return b.String()
}
