package main

// flumen-util models: manage the model registry of a running flumend (or
// flumen-router, which fans registrations out to the whole fleet).
//
//	flumen-util models register -server http://host:9090 [-file spec.json]
//	flumen-util models list     -server http://host:9090
//	flumen-util models rm       -server http://host:9090 name@version
//
// register reads a registry spec (JSON) from -file or stdin and POSTs it to
// /v1/models; list prints the registered models; rm unregisters one.
//
// Exit codes: 0 success, 1 transport or server error, 2 usage error,
// 3 model not found (rm).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"flumen/internal/serve"
)

const (
	exitOK        = 0
	exitError     = 1
	exitUsage     = 2
	exitNotFound  = 3
	modelsTimeout = 60 * time.Second
)

// runModels dispatches "flumen-util models <verb> ..." and returns the
// process exit code.
func runModels(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flumen-util models {register|list|rm} [flags]")
		return exitUsage
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "register":
		return modelsRegister(rest)
	case "list":
		return modelsList(rest)
	case "rm":
		return modelsRemove(rest)
	default:
		fmt.Fprintf(os.Stderr, "flumen-util models: unknown subcommand %q (want register, list, or rm)\n", verb)
		return exitUsage
	}
}

func modelsFlags(verb string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("flumen-util models "+verb, flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:9090", "flumend or flumen-router base URL")
	return fs, server
}

func modelsClient() *http.Client {
	return &http.Client{Timeout: modelsTimeout}
}

// httpErr prints a transport or server failure and classifies the exit code.
func httpErr(verb string, resp *http.Response, body []byte) int {
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	fmt.Fprintf(os.Stderr, "flumen-util models %s: server answered %d: %s\n", verb, resp.StatusCode, msg)
	if resp.StatusCode == http.StatusNotFound {
		return exitNotFound
	}
	return exitError
}

func modelsRegister(args []string) int {
	fs, server := modelsFlags("register")
	file := fs.String("file", "", "model spec JSON file (default: read stdin)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "flumen-util models register: unexpected positional arguments (the spec comes from -file or stdin)")
		return exitUsage
	}

	var spec []byte
	var err error
	if *file != "" {
		spec, err = os.ReadFile(*file)
	} else {
		spec, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models register: reading spec: %v\n", err)
		return exitError
	}
	if !json.Valid(spec) {
		fmt.Fprintln(os.Stderr, "flumen-util models register: spec is not valid JSON")
		return exitUsage
	}

	resp, err := modelsClient().Post(*server+"/v1/models", "application/json", bytes.NewReader(spec))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models register: %v\n", err)
		return exitError
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return httpErr("register", resp, body)
	}
	var rr serve.ModelRegisterResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models register: bad response: %v\n", err)
		return exitError
	}
	state := "registered"
	if !rr.Created {
		state = "already registered"
	}
	fmt.Printf("%s %s@%s kind=%s digest=%s bytes=%d\n",
		state, rr.Model.Name, rr.Model.Version, rr.Model.Kind, shortDigest(rr.Model.Digest), rr.Model.Bytes)
	return exitOK
}

func modelsList(args []string) int {
	fs, server := modelsFlags("list")
	asJSON := fs.Bool("json", false, "print the raw JSON listing")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "flumen-util models list: unexpected positional arguments")
		return exitUsage
	}

	resp, err := modelsClient().Get(*server + "/v1/models")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models list: %v\n", err)
		return exitError
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return httpErr("list", resp, body)
	}
	if *asJSON {
		os.Stdout.Write(body)
		if len(body) > 0 && body[len(body)-1] != '\n' {
			fmt.Println()
		}
		return exitOK
	}
	var lr serve.ModelListResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models list: bad response: %v\n", err)
		return exitError
	}
	if len(lr.Models) == 0 {
		fmt.Println("no models registered")
		return exitOK
	}
	fmt.Printf("%-24s %-8s %-12s %10s  %-10s %s\n", "MODEL", "KIND", "DIGEST", "BYTES", "PREWARMED", "REGISTERED")
	for _, m := range lr.Models {
		fmt.Printf("%-24s %-8s %-12s %10d  %-10v %s\n",
			m.Name+"@"+m.Version, m.Kind, shortDigest(m.Digest), m.Bytes, m.Prewarmed, m.Registered)
	}
	return exitOK
}

func modelsRemove(args []string) int {
	fs, server := modelsFlags("rm")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flumen-util models rm [-server URL] name@version")
		return exitUsage
	}
	ref := fs.Arg(0)

	req, err := http.NewRequest(http.MethodDelete, *server+"/v1/models/"+url.PathEscape(ref), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models rm: %v\n", err)
		return exitError
	}
	resp, err := modelsClient().Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flumen-util models rm: %v\n", err)
		return exitError
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return httpErr("rm", resp, body)
	}
	fmt.Printf("removed %s\n", ref)
	return exitOK
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
