package flumen

import (
	"math/rand"
	"sync"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	return m
}

func newEngineAccel(t testing.TB, ports, block int) *Accelerator {
	t.Helper()
	a, err := NewAccelerator(ports, block)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestEnginePartitionCount checks the fabric is carved into ports/blockSize
// partitions and that workers default to that count and clamp correctly.
func TestEnginePartitionCount(t *testing.T) {
	a := newEngineAccel(t, 32, 8)
	if got := a.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions = %d, want 4", got)
	}
	if got := a.Workers(); got != 4 {
		t.Fatalf("default Workers = %d, want 4", got)
	}
	a.SetWorkers(100)
	if got := a.Workers(); got != 4 {
		t.Fatalf("Workers after SetWorkers(100) = %d, want clamp to 4", got)
	}
	a.SetWorkers(-3)
	if got := a.Workers(); got != 1 {
		t.Fatalf("Workers after SetWorkers(-3) = %d, want clamp to 1", got)
	}
}

// TestEngineParallelMatchesSerialBitwise is the engine's core determinism
// guarantee: for noiseless runs the parallel result is bitwise-identical
// to the serial result, for every worker count, including the energy and
// counter totals.
func TestEngineParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randMatrix(rng, 20, 20)
	x := randMatrix(rng, 20, 5)

	serial := newEngineAccel(t, 32, 8)
	serial.SetWorkers(1)
	want, err := serial.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := serial.Stats()
	wantPrograms, wantBatches := wantStats.Programs, wantStats.Batches
	wantEnergy := serial.EnergyPJ()

	for _, workers := range []int{2, 3, 4} {
		par := newEngineAccel(t, 32, 8)
		par.SetWorkers(workers)
		got, err := par.MatMul(m, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: element (%d,%d) = %v, serial %v (not bitwise-equal)",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
		parStats := par.Stats()
		programs, batches := parStats.Programs, parStats.Batches
		if programs != wantPrograms || batches != wantBatches {
			t.Fatalf("workers=%d: counters (%d,%d), serial (%d,%d)",
				workers, programs, batches, wantPrograms, wantBatches)
		}
		if e := par.EnergyPJ(); e != wantEnergy {
			t.Fatalf("workers=%d: energy %v, serial %v", workers, e, wantEnergy)
		}
	}
}

// TestEngineNoiseDeterministicUnderPool verifies EnableNoise(seed)
// reproducibility is independent of worker scheduling: the same seed
// produces the exact same noisy output at any worker count, and a
// different seed produces a different one.
func TestEngineNoiseDeterministicUnderPool(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 4)

	run := func(workers int, seed int64) [][]float64 {
		a := newEngineAccel(t, 32, 8)
		a.SetWorkers(workers)
		a.EnableNoise(seed)
		out, err := a.MatMul(m, x)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	ref := run(1, 42)
	for _, workers := range []int{2, 4} {
		got := run(workers, 42)
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d seed=42: element (%d,%d) = %v, want %v",
						workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
	other := run(4, 43)
	same := true
	for i := range ref {
		for j := range ref[i] {
			if other[i][j] != ref[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical noisy output")
	}
}

// TestEngineProgramCacheHits verifies repeated MatMul with the same
// weights hits the cache (one miss per distinct block, then pure hits)
// and that cache hits return bitwise-identical results.
func TestEngineProgramCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 3)

	a := newEngineAccel(t, 16, 8)
	first, err := a.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	st := a.ProgramCacheStats()
	if st.Misses != 4 || st.Hits != 0 || st.Entries != 4 {
		t.Fatalf("after first call: %+v, want 4 misses, 0 hits, 4 entries", st)
	}
	second, err := a.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	st = a.ProgramCacheStats()
	if st.Misses != 4 || st.Hits != 4 {
		t.Fatalf("after second call: %+v, want 4 misses, 4 hits", st)
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("cached result differs at (%d,%d): %v vs %v", i, j, second[i][j], first[i][j])
			}
		}
	}
	// Counters must be unaffected by caching: phases are still re-applied.
	aStats := a.Stats()
	programs, batches := aStats.Programs, aStats.Batches
	if programs != 8 || batches != 8 {
		t.Fatalf("counters (%d,%d), want (8,8)", programs, batches)
	}
}

// TestEngineProgramCacheEviction exercises the LRU policy with a
// capacity-1 cache over two distinct blocks.
func TestEngineProgramCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randMatrix(rng, 16, 8) // two block rows: two distinct programs
	x := randMatrix(rng, 8, 2)

	a := newEngineAccel(t, 16, 8)
	a.SetWorkers(1)
	a.SetProgramCacheSize(1)
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	st := a.ProgramCacheStats()
	if st.Capacity != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want capacity 1, entries 1", st)
	}
	if st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 misses, 1 eviction", st)
	}
	// Second call: block 0 was evicted by block 1, so with capacity 1 the
	// serial (c-major) walk misses both again.
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	st = a.ProgramCacheStats()
	if st.Misses != 4 || st.Evictions != 3 {
		t.Fatalf("stats after thrash %+v, want 4 misses, 3 evictions", st)
	}
}

// TestEngineCacheDisabledMatchesEnabled verifies the cache is purely an
// optimization: disabling it changes no output bit.
func TestEngineCacheDisabledMatchesEnabled(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 4)

	cached := newEngineAccel(t, 32, 8)
	a1, err := cached.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cached.MatMul(m, x) // warm: served from cache
	if err != nil {
		t.Fatal(err)
	}

	uncached := newEngineAccel(t, 32, 8)
	uncached.SetProgramCacheSize(0)
	b1, err := uncached.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if st := uncached.ProgramCacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", st)
	}

	for i := range a1 {
		for j := range a1[i] {
			if a1[i][j] != b1[i][j] || a2[i][j] != b1[i][j] {
				t.Fatalf("cache changed result at (%d,%d)", i, j)
			}
		}
	}
}

// TestEngineMatVecMatchesMatMulColumn checks the MatVec fast path (no
// 1-column transpose round-trip) agrees bitwise with the MatMul column.
func TestEngineMatVecMatchesMatMulColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := randMatrix(rng, 12, 10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	col := make([][]float64, len(x))
	for i := range col {
		col[i] = []float64{x[i]}
	}

	a := newEngineAccel(t, 16, 8)
	y, err := a.MatVec(m, x)
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.MatMul(m, col)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != full[i][0] {
			t.Fatalf("MatVec[%d] = %v, MatMul column %v", i, y[i], full[i][0])
		}
	}
}

// TestEngineConcurrentMatMulStress hammers one Accelerator from many
// goroutines (run under -race in CI) and checks results stay correct and
// the energy/program/batch totals stay exact.
func TestEngineConcurrentMatMulStress(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 4)

	ref := newEngineAccel(t, 32, 8)
	want, err := ref.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.Stats()
	refPrograms, refBatches := refStats.Programs, refStats.Batches
	refEnergy := ref.EnergyPJ()

	const calls = 16
	a := newEngineAccel(t, 32, 8)
	var wg sync.WaitGroup
	outs := make([][][]float64, calls)
	errs := make([]error, calls)
	for g := 0; g < calls; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = a.MatMul(m, x)
		}(g)
	}
	wg.Wait()
	for g := 0; g < calls; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for i := range want {
			for j := range want[i] {
				if outs[g][i][j] != want[i][j] {
					t.Fatalf("call %d: element (%d,%d) diverged under concurrency", g, i, j)
				}
			}
		}
	}
	aStats := a.Stats()
	programs, batches := aStats.Programs, aStats.Batches
	if programs != calls*refPrograms || batches != calls*refBatches {
		t.Fatalf("counters (%d,%d), want (%d,%d)", programs, batches, calls*refPrograms, calls*refBatches)
	}
	// Every call contributes the identical per-call energy, so the mutexed
	// sum is exact regardless of interleaving.
	wantEnergy := 0.0
	for g := 0; g < calls; g++ {
		wantEnergy += refEnergy
	}
	if e := a.EnergyPJ(); e != wantEnergy {
		t.Fatalf("energy %v, want %v", e, wantEnergy)
	}
}

// TestEngineRoutePermutationRestoresPool checks compute still works (with
// all partitions) after the fabric is borrowed for communication routing.
func TestEngineRoutePermutationRestoresPool(t *testing.T) {
	a := newEngineAccel(t, 16, 4)
	perm := []int{5, 3, 1, 7, 0, 2, 4, 6, 9, 8, 11, 10, 13, 12, 15, 14}
	if _, err := a.RoutePermutation(perm); err != nil {
		t.Fatal(err)
	}
	if got := a.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions after routing = %d, want 4", got)
	}
	rng := rand.New(rand.NewSource(18))
	m := randMatrix(rng, 8, 8)
	x := randMatrix(rng, 8, 2)
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatalf("MatMul after RoutePermutation: %v", err)
	}
}
