package flumen

import (
	"math"
	"testing"

	"flumen/internal/workload"
)

func TestRunSuiteHeadlines(t *testing.T) {
	// The paper's headline geometric means (Flumen-A vs Mesh): 3.6×
	// speedup, 2.5× energy, 9.3× EDP. At quarter scale our shapes land in
	// the same neighbourhood; assert generous but meaningful bounds.
	s, err := RunSuite(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 5 {
		t.Fatalf("suite ran %d benchmarks", len(s.Benchmarks))
	}
	sp := s.GeomeanSpeedup("Mesh")
	if sp < 1.5 || sp > 8 {
		t.Fatalf("geomean speedup %.2f outside the paper's neighbourhood (3.6×)", sp)
	}
	eg := s.GeomeanEnergyGain("Mesh")
	if eg < 1.3 || eg > 8 {
		t.Fatalf("geomean energy gain %.2f outside the paper's neighbourhood (2.5×)", eg)
	}
	edp := s.GeomeanEDPGain("Mesh")
	if edp < 2 || edp > 60 {
		t.Fatalf("geomean EDP gain %.2f outside the paper's neighbourhood (9.3×)", edp)
	}
	// EDP gain ≈ speedup × energy gain by construction.
	if math.Abs(edp-sp*eg)/edp > 0.25 {
		t.Fatalf("EDP gain %.2f inconsistent with speedup %.2f × energy %.2f", edp, sp, eg)
	}
}

func TestSuiteOrderingMatchesPaperExtremes(t *testing.T) {
	// The paper's defining ordering: 3D Rotation and ResNet50 Conv3 at
	// the top of the speedup ranking; VGG16 FC and Image Blur in the
	// bottom tier.
	s, err := RunSuite(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]float64{}
	for _, b := range s.Benchmarks {
		sp[b] = s.Results[b]["Flumen-A"].SpeedupOver(s.Results[b]["Mesh"])
	}
	top := math.Max(sp["3DRotation"], sp["ResNet50Conv3"])
	bottom := math.Min(sp["VGG16FC"], sp["ImageBlur"])
	for _, b := range s.Benchmarks {
		if b == "3DRotation" || b == "ResNet50Conv3" {
			continue
		}
		if sp[b] > top {
			t.Errorf("%s (%.2f×) outranks the paper's top tier (%.2f×)", b, sp[b], top)
		}
	}
	if bottom > sp["JPEG"] {
		t.Errorf("bottom tier (%.2f×) outranks JPEG (%.2f×)", bottom, sp["JPEG"])
	}
}

func TestAblationProgramPipeliningHurtsVGG(t *testing.T) {
	// Disabling the double-buffered phase DACs exposes the full 6 ns per
	// block switch; the zero-reuse VGG16 FC must slow down markedly while
	// the reuse-heavy rotation barely notices.
	var vgg, rot workload.Workload
	for _, w := range workload.ScaledAll(4) {
		switch w.Name() {
		case "VGG16FC":
			vgg = w
		case "3DRotation":
			rot = w
		}
	}
	cfgOn := DefaultConfig()
	cfgOff := DefaultConfig()
	cfgOff.DisableProgramPipelining = true

	vggOn, err := RunWorkload(vgg, "Flumen-A", cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	vggOff, err := RunWorkload(vgg, "Flumen-A", cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	if float64(vggOff.Cycles) < 1.5*float64(vggOn.Cycles) {
		t.Fatalf("serialized programming should hurt VGG: %d vs %d cycles", vggOff.Cycles, vggOn.Cycles)
	}

	rotOn, err := RunWorkload(rot, "Flumen-A", cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	rotOff, err := RunWorkload(rot, "Flumen-A", cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rotOff.Cycles) > 1.3*float64(rotOn.Cycles) {
		t.Fatalf("high-reuse rotation should barely notice: %d vs %d cycles", rotOff.Cycles, rotOn.Cycles)
	}
}

func TestGeomeanHelper(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %g", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("empty geomean %g", g)
	}
	if g := geomean([]float64{1, -1}); g != 0 {
		t.Fatalf("non-positive geomean %g", g)
	}
}
