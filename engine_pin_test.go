package flumen

import (
	"math"
	"math/rand"
	"testing"
)

// TestPrewarmWeightsPinsAgainstEviction: pinned block programs must survive
// arbitrary cache churn from other weights, and unpinning must return them
// to normal LRU lifetime.
func TestPrewarmWeightsPinsAgainstEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randMatrix(rng, 16, 16) // 4 blocks at block size 8
	other := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 2)

	a := newEngineAccel(t, 16, 8)
	a.SetWorkers(1)
	a.SetProgramCacheSize(4)

	pinned, err := a.PrewarmWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != 4 {
		t.Fatalf("PrewarmWeights pinned %d programs, want 4", pinned)
	}
	st := a.ProgramCacheStats()
	if st.Pinned != 4 || st.Entries != 4 {
		t.Fatalf("after prewarm: %+v, want 4 pinned of 4 entries", st)
	}

	// Serving the prewarmed weights is all hits: the prewarm already paid
	// every compile.
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	st = a.ProgramCacheStats()
	if st.Misses != 4 || st.Hits != 4 {
		t.Fatalf("prewarmed serve: %+v, want 4 misses (from prewarm), 4 hits", st)
	}

	// Now thrash: a second matrix wants 4 more slots in a 4-slot cache whose
	// every resident entry is pinned. The newcomers are the only evictable
	// entries (they evict themselves); the pinned set must stay resident.
	if _, err := a.MatMul(other, x); err != nil {
		t.Fatal(err)
	}
	st = a.ProgramCacheStats()
	if st.Pinned != 4 {
		t.Fatalf("churn broke pins: %+v", st)
	}
	before := st.Misses
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	if st = a.ProgramCacheStats(); st.Misses != before {
		t.Fatalf("pinned weights recompiled under churn: %+v", st)
	}
	churnEvictions := st.Evictions

	// Unpin: the entries drop back to LRU lifetime and the next insert
	// shrinks the cache to capacity again.
	if released := a.UnpinWeights(m); released != 4 {
		t.Fatalf("UnpinWeights released %d, want 4", released)
	}
	if st = a.ProgramCacheStats(); st.Pinned != 0 {
		t.Fatalf("after unpin: %+v, want 0 pinned", st)
	}
	if _, err := a.MatMul(randMatrix(rng, 16, 16), x); err != nil {
		t.Fatal(err)
	}
	st = a.ProgramCacheStats()
	if st.Evictions <= churnEvictions || st.Entries > 4 {
		t.Fatalf("after unpin + churn: %+v, want unpinned entries evicted and the cache back at capacity", st)
	}
}

// TestPrewarmWeightsBitwiseNeutral: prewarming is purely a cache fill — it
// must not change a single output bit or meter any energy.
func TestPrewarmWeightsBitwiseNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 3)
	v := make([]float64, 16)
	for i := range v {
		v[i] = rng.NormFloat64()
	}

	cold := newEngineAccel(t, 16, 8)
	wantMM, err := cold.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	wantMV, err := cold.MatVec(m, v)
	if err != nil {
		t.Fatal(err)
	}

	warm := newEngineAccel(t, 16, 8)
	if _, err := warm.PrewarmWeights(m); err != nil {
		t.Fatal(err)
	}
	if e := warm.EnergyPJ(); e != 0 {
		t.Fatalf("prewarm metered %g pJ", e)
	}
	if p := warm.Stats().Programs; p != 0 {
		t.Fatalf("prewarm programmed %d partitions", p)
	}
	missesAfterPrewarm := warm.ProgramCacheStats().Misses

	gotMM, err := warm.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	// MatVec lowers onto the same block programs, so the prewarm covers the
	// /v1/infer FC path too.
	gotMV, err := warm.MatVec(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.ProgramCacheStats(); st.Misses != missesAfterPrewarm {
		t.Fatalf("prewarmed serving still compiled: %+v", st)
	}
	for i := range wantMM {
		for j := range wantMM[i] {
			if math.Float64bits(gotMM[i][j]) != math.Float64bits(wantMM[i][j]) {
				t.Fatalf("MatMul differs bitwise at (%d,%d) after prewarm", i, j)
			}
		}
	}
	for i := range wantMV {
		if math.Float64bits(gotMV[i]) != math.Float64bits(wantMV[i]) {
			t.Fatalf("MatVec differs bitwise at %d after prewarm", i)
		}
	}
}

// TestCacheResizeDropsPins documents the registry's one caveat: resizing the
// program cache replaces it wholesale, so pins do not survive and a later
// unpin releases nothing.
func TestCacheResizeDropsPins(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randMatrix(rng, 16, 16)

	a := newEngineAccel(t, 16, 8)
	if _, err := a.PrewarmWeights(m); err != nil {
		t.Fatal(err)
	}
	if st := a.ProgramCacheStats(); st.Pinned != 4 {
		t.Fatalf("prewarm pinned %d, want 4", st.Pinned)
	}
	a.SetProgramCacheSize(64)
	if st := a.ProgramCacheStats(); st.Pinned != 0 {
		t.Fatalf("pins survived a cache resize: %+v", st)
	}
	if released := a.UnpinWeights(m); released != 0 {
		t.Fatalf("UnpinWeights released %d from a fresh cache, want 0", released)
	}
}

// TestPrewarmDisabledCacheIsNoop: with caching off there is nothing to pin.
func TestPrewarmDisabledCacheIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := newEngineAccel(t, 16, 8)
	a.SetProgramCacheSize(0)
	n, err := a.PrewarmWeights(randMatrix(rng, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("pinned %d programs with caching disabled", n)
	}
}
