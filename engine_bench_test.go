package flumen

import (
	"math/rand"
	"testing"
)

// Engine-level kernel benchmarks: the same 256×256 MatMul with the compiled
// SoA path on and off, at both block sizes. The program cache is sized to
// the sweep's block count so the steady state is genuinely warm (an evicted
// program drops its compiled plan with it). The fuller cold/warm × fabric/
// engine sweep lives in `flumen-bench -kernel`.

func benchEngineMatMul(b *testing.B, compiled bool, blockSize, size, nrhs int) {
	a, err := NewAccelerator(64, blockSize)
	if err != nil {
		b.Fatal(err)
	}
	a.SetCompiledKernels(compiled)
	a.SetProgramCacheSize((size / blockSize) * (size / blockSize)) // hold every block of the sweep
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, size, size)
	x := randMatrix(rng, size, nrhs)
	if _, err := a.MatMul(m, x); err != nil { // prime caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.MatMul(m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineKernelInterp256(b *testing.B)      { benchEngineMatMul(b, false, 8, 256, 256) }
func BenchmarkEngineKernelCompiled256(b *testing.B)    { benchEngineMatMul(b, true, 8, 256, 256) }
func BenchmarkEngineKernelInterp256B32(b *testing.B)   { benchEngineMatMul(b, false, 32, 256, 256) }
func BenchmarkEngineKernelCompiled256B32(b *testing.B) { benchEngineMatMul(b, true, 32, 256, 256) }
