package flumen

import (
	"math/rand"
	"testing"
	"time"

	"flumen/internal/fabric"
	"flumen/internal/photonic"
)

// healthTestConfig probes after every item and quarantines on the first
// failing probe so tests converge in a handful of MatMul calls.
func healthTestConfig() HealthConfig {
	return HealthConfig{
		ProbeInterval:    1,
		SuspectThreshold: 0.02,
		QuarantineAfter:  1,
		RecalPasses:      8,
		MaxRecalAttempts: 3,
	}
}

func testMatrices(n int, seed int64) (m, x [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	m = make([][]float64, n)
	x = make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		x[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = rng.Float64()*2 - 1
			x[i][j] = rng.Float64()*2 - 1
		}
	}
	return m, x
}

// driveUntil runs MatMul calls until pred(stats) holds or the deadline
// passes, returning the last snapshot.
func driveUntil(t *testing.T, a *Accelerator, pred func(HealthStats) bool) HealthStats {
	t.Helper()
	m, x := testMatrices(32, 1)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := a.MatMul(m, x); err != nil {
			t.Fatalf("MatMul: %v", err)
		}
		if st := a.HealthStats(); pred(st) {
			return st
		}
	}
	st := a.HealthStats()
	t.Fatalf("condition not reached before deadline; stats: %+v", st)
	return st
}

func TestHealthQuarantineAndRecoveryPoolMode(t *testing.T) {
	a, err := NewAccelerator(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EnableHealthMonitor(healthTestConfig()); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(0, photonic.FaultConfig{DriftSigma: 0.03, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	st := driveUntil(t, a, func(st HealthStats) bool { return st.Quarantines >= 1 })
	if !st.Degraded() && st.Recalibrations == 0 {
		t.Fatalf("quarantined but neither degraded nor recovered: %+v", st)
	}

	// Background recalibration must eventually return the partition to
	// service (drift keeps accumulating, so it may be quarantined again
	// later — a lifetime recalibration counter is the stable signal).
	st = driveUntil(t, a, func(st HealthStats) bool { return st.Recalibrations >= 1 })
	if st.Probes == 0 || st.Partitions[0].Probes == 0 {
		t.Fatalf("no probes recorded: %+v", st)
	}
	if !st.Partitions[0].Faulty {
		t.Fatal("partition 0 not marked faulty")
	}
	for i := 1; i < len(st.Partitions); i++ {
		if st.Partitions[i].Probes != 0 || st.Partitions[i].State != HealthHealthy {
			t.Fatalf("pristine partition %d was probed or left healthy state: %+v", i, st.Partitions[i])
		}
	}
}

func TestHealthShrunkenPoolBitwiseIdentical(t *testing.T) {
	faulty, err := NewAccelerator(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.EnableHealthMonitor(healthTestConfig()); err != nil {
		t.Fatal(err)
	}
	if err := faulty.InjectFaults(0, photonic.FaultConfig{DriftSigma: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// Drive until the faulted partition is out of service and not yet
	// recovered, so the comparison call below runs on healthy hardware only.
	driveUntil(t, faulty, func(st HealthStats) bool {
		return st.Partitions[0].State == HealthQuarantined || st.Partitions[0].State == HealthRecalibrating
	})

	pristine, err := NewAccelerator(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, x := testMatrices(24, 9)
	want, err := pristine.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulty.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("shrunken-pool result differs at (%d,%d): %g vs %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestHealthMinHealthyFloor(t *testing.T) {
	a, err := NewAccelerator(16, 8) // 2 partitions
	if err != nil {
		t.Fatal(err)
	}
	cfg := healthTestConfig()
	cfg.MaxRecalAttempts = 1
	cfg.RecalPasses = 1 // recovery usually fails, pressuring the floor
	if err := a.EnableHealthMonitor(cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.InjectFaults(i, photonic.FaultConfig{DriftSigma: 0.08, Seed: int64(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	m, x := testMatrices(32, 2)
	for round := 0; round < 40; round++ {
		if _, err := a.MatMul(m, x); err != nil {
			t.Fatalf("MatMul with floor active: %v", err)
		}
		if st := a.HealthStats(); st.InService < 1 {
			t.Fatalf("InService dropped below MinHealthy: %+v", st)
		}
	}
	st := a.HealthStats()
	if st.Quarantines == 0 {
		t.Fatalf("no quarantine despite heavy drift on both partitions: %+v", st)
	}
}

func TestHealthFabricModeQuarantine(t *testing.T) {
	a, err := NewAccelerator(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := fabric.New(fabric.Config{Partitions: a.NumPartitions(), Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer arb.Close()
	if err := a.AttachFabric(arb); err != nil {
		t.Fatal(err)
	}
	if err := a.EnableHealthMonitor(healthTestConfig()); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectFaults(1, photonic.FaultConfig{DriftSigma: 0.03, Seed: 4}); err != nil {
		t.Fatal(err)
	}

	driveUntil(t, a, func(st HealthStats) bool { return st.Quarantines >= 1 })
	if arb.Stats().QuarantinesTotal == 0 {
		t.Fatal("arbiter never saw a quarantine")
	}
	// Recovery lifts the quarantine at the arbiter.
	driveUntil(t, a, func(st HealthStats) bool { return st.Recalibrations >= 1 })
	deadline := time.Now().Add(5 * time.Second)
	for arb.Quarantined(1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fs := arb.Stats()
	if fs.QuarantinesTotal == 0 {
		t.Fatalf("arbiter quarantine counters empty: %+v", fs)
	}
}

func TestHealthGuards(t *testing.T) {
	a, err := NewAccelerator(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st := a.HealthStats(); st.Enabled {
		t.Fatal("health reported enabled before EnableHealthMonitor")
	}
	if err := a.EnableHealthMonitor(HealthConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.EnableHealthMonitor(HealthConfig{}); err == nil {
		t.Fatal("double EnableHealthMonitor accepted")
	}
	if err := a.InjectFaults(99, photonic.FaultConfig{}); err == nil {
		t.Fatal("out-of-range InjectFaults accepted")
	}
	perm := make([]int, a.Ports())
	for i := range perm {
		perm[i] = (i + 1) % len(perm)
	}
	if _, err := a.RoutePermutation(perm); err == nil {
		t.Fatal("RoutePermutation allowed with health monitor enabled")
	}
}
