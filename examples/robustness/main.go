// Robustness: how the photonic fabric's accuracy degrades under the two
// hardware imperfections the paper's technology discussion turns on —
// thermal/drift phase noise (Sec 6: MZIs tolerate what destabilizes MRRs)
// and static coupler imbalance — and how the measurement-in-the-loop
// optimization of the paper's programming references ([33] Pai et al.)
// recovers fidelity that open-loop Clements programming cannot.
package main

import (
	"fmt"
	"math/rand"

	"flumen/internal/mat"
	"flumen/internal/optics"
	"flumen/internal/photonic"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	u := mat.RandomUnitary(8, rng)

	fmt.Println("phase noise (thermal drift) on a programmed 8×8 mesh:")
	fmt.Printf("%-12s %16s %22s\n", "σ (rad)", "matrix err", "≈ equivalent bits")
	for _, sigma := range []float64{0.0005, 0.001, 0.005, 0.01, 0.05} {
		var worst float64
		for trial := 0; trial < 8; trial++ {
			m := photonic.NewMesh(8)
			m.ProgramUnitary(u)
			m.PerturbPhases(sigma, rng)
			if d := mat.MaxAbsDiff(m.Matrix(), u); d > worst {
				worst = d
			}
		}
		// Error ε on unit-scale signals ≈ an ADC with step 2ε.
		bits := 0.0
		if worst > 0 {
			for s := 1.0; s/2 > worst && bits < 16; bits++ {
				s /= 2
			}
		}
		fmt.Printf("%-12g %16.5f %22.0f\n", sigma, worst, bits)
	}
	fmt.Println("\n→ sub-1% phase control keeps the fabric at 8-bit equivalent accuracy;")
	fmt.Println("  MZI phases are static voltages, not resonance conditions, so no")
	fmt.Println("  per-device thermal servo is needed (unlike the MRR banks of OptBus).")

	fmt.Println("\nstatic coupler imbalance + in-situ optimization (8×8 mesh):")
	fmt.Printf("%-12s %18s %18s %10s\n", "σ (50:50)", "open-loop err", "optimized err", "recovery")
	for _, sigma := range []float64{0.005, 0.01, 0.02, 0.05} {
		m := photonic.NewMesh(8)
		m.SetFabricationErrors(sigma, rng)
		m.ProgramUnitary(u)
		before := mat.Sub(m.Matrix(), u).FrobeniusNorm()
		after := m.InSituOptimize(u, 4)
		fmt.Printf("%-12g %18.5f %18.5f %9.1f×\n", sigma, before, after, before/after)
	}

	fmt.Println("\nwhy ring-based designs cannot do this (MRR crosstalk floors):")
	for _, ch := range []int{16, 64} {
		x := optics.NewWDMDemux(ch, 0.8).WorstAggregateCrosstalkDB()
		fmt.Printf("  %2d-λ ring demux: %.1f dB aggregate crosstalk → %.1f usable bits\n",
			ch, x, optics.CrosstalkLimitedBits(x))
	}
	d := optics.DefaultDevices()
	l := optics.DefaultLink()
	fmt.Printf("  Flumen compute receiver physics: %.1f bits (Table 1: 8-bit equivalent)\n",
		optics.ComputePrecisionBits(d, -4, l))
}
