// DNN inference on the photonic fabric: a small two-layer network — a
// convolutional feature extractor lowered through im2col (Fig. 7) followed
// by a fully-connected classifier head — executed entirely as photonic
// block matrix multiplications at 8-bit equivalent precision, with ReLU
// and argmax on the "cores". Verifies the photonic prediction agrees with
// the float64 reference and reports per-layer compute energy.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"flumen"
	"flumen/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Layer 1: 8×8×2 input, four 3×3×2 kernels, stride 1, no padding →
	// 6×6×4 output.
	shape := workload.ConvShape{InW: 8, InH: 8, InC: 2, KW: 3, KH: 3, NumKernels: 4, Stride: 1, Pad: 0}
	in := workload.NewVolume(shape.InW, shape.InH, shape.InC)
	for i := range in.Data {
		in.Data[i] = 2*rng.Float64() - 1
	}
	kernels := make([][]float64, shape.NumKernels)
	for k := range kernels {
		kernels[k] = make([]float64, shape.PatchLen())
		for i := range kernels[k] {
			kernels[k][i] = (2*rng.Float64() - 1) / 3
		}
	}
	// Layer 2: FC 10 × (6·6·4).
	features := shape.Patches() * shape.NumKernels
	const classes = 10
	fcW := make([][]float64, classes)
	for i := range fcW {
		fcW[i] = make([]float64, features)
		for j := range fcW[i] {
			fcW[i][j] = (2*rng.Float64() - 1) / 8
		}
	}

	relu := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			if x > 0 {
				out[i] = x
			}
		}
		return out
	}
	argmax := func(xs []float64) int {
		best := 0
		for i, x := range xs {
			if x > xs[best] {
				best = i
			}
		}
		_ = xs[best]
		return best
	}

	// ---- float64 reference ----
	conv := workload.ConvViaMatMul(shape, in, kernels)
	refFeat := relu(append([]float64(nil), conv.Data...))
	refLogits := make([]float64, classes)
	for i := range fcW {
		for j, w := range fcW[i] {
			refLogits[i] += w * refFeat[j]
		}
	}
	refClass := argmax(refLogits)

	// ---- photonic path ----
	acc, err := flumen.NewAccelerator(16, 8)
	if err != nil {
		log.Fatal(err)
	}
	// Conv as kernel-matrix × im2col-matrix.
	km := make([][]float64, shape.NumKernels)
	for k := range km {
		km[k] = kernels[k]
	}
	cols := workload.Im2Col(shape, in)
	rhs := make([][]float64, cols.Rows())
	for i := range rhs {
		rhs[i] = make([]float64, cols.Cols())
		for j := range rhs[i] {
			rhs[i][j] = real(cols.At(i, j))
		}
	}
	convOut, err := acc.MatMul(km, rhs)
	if err != nil {
		log.Fatal(err)
	}
	convEnergy := acc.EnergyPJ()
	// Feature vector in the same (channel-major) order as the reference.
	feat := make([]float64, features)
	for k := 0; k < shape.NumKernels; k++ {
		for p := 0; p < shape.Patches(); p++ {
			feat[k*shape.Patches()+p] = convOut[k][p]
		}
	}
	feat = relu(feat)
	logits, err := acc.MatVec(fcW, feat)
	if err != nil {
		log.Fatal(err)
	}
	photClass := argmax(logits)

	var worstFeat, worstLogit float64
	for i := range refFeat {
		if d := math.Abs(feat[i] - refFeat[i]); d > worstFeat {
			worstFeat = d
		}
	}
	for i := range refLogits {
		if d := math.Abs(logits[i] - refLogits[i]); d > worstLogit {
			worstLogit = d
		}
	}
	st := acc.Stats()
	programs, batches := st.Programs, st.Batches

	fmt.Println("two-layer photonic inference (conv 3×3×2→4 + FC→10, 8-bit analog):")
	fmt.Printf("  conv feature error (max):   %.4f\n", worstFeat)
	fmt.Printf("  logit error (max):          %.4f\n", worstLogit)
	fmt.Printf("  predicted class: photonic=%d  reference=%d  (%s)\n",
		photClass, refClass, matchWord(photClass == refClass))
	fmt.Printf("  fabric work: %d phase programs, %d λ-batches\n", programs, batches)
	fmt.Printf("  photonic energy: conv %.0f pJ, FC %.0f pJ, total %.0f pJ\n",
		convEnergy, acc.EnergyPJ()-convEnergy, acc.EnergyPJ())

	fmt.Println("\nlogits (photonic vs reference):")
	for i := range logits {
		marker := "  "
		if i == photClass {
			marker = "→ "
		}
		fmt.Printf("  %sclass %d: %+8.4f vs %+8.4f\n", marker, i, logits[i], refLogits[i])
	}
}

func matchWord(ok bool) string {
	if ok {
		return "match"
	}
	return "MISMATCH"
}
