// Quickstart: run one benchmark on the electrical mesh and on Flumen with
// acceleration enabled, and print the headline comparison (runtime, energy,
// EDP) — the minimal end-to-end use of the flumen package.
package main

import (
	"fmt"
	"log"

	"flumen"
)

func main() {
	cfg := flumen.DefaultConfig()

	mesh, err := flumen.RunBenchmark("JPEG", "Mesh", cfg)
	if err != nil {
		log.Fatal(err)
	}
	accel, err := flumen.RunBenchmark("JPEG", "Flumen-A", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("JPEG compression, 64 cores / 16 chiplets")
	fmt.Printf("%-22s %14s %14s\n", "", "Mesh", "Flumen-A")
	fmt.Printf("%-22s %11d cy %11d cy\n", "runtime", mesh.Cycles, accel.Cycles)
	fmt.Printf("%-22s %11.1f µJ %11.1f µJ\n", "total energy",
		mesh.Energy.TotalPJ()/1e6, accel.Energy.TotalPJ()/1e6)
	fmt.Printf("%-22s %11.2f µs %11.2f µs\n", "wall time",
		mesh.Seconds*1e6, accel.Seconds*1e6)
	fmt.Printf("%-22s %14.3f %14.3f\n", "EDP (nJ·s)",
		mesh.EDPJouleSeconds*1e9, accel.EDPJouleSeconds*1e9)
	fmt.Println()
	fmt.Printf("speedup:     %.2f×\n", accel.SpeedupOver(mesh))
	fmt.Printf("energy gain: %.2f×\n", accel.EnergyGainOver(mesh))
	fmt.Printf("EDP gain:    %.2f×\n", accel.EDPGainOver(mesh))
	fmt.Printf("\nFlumen-A offloaded %d compute kernels (%d phase programs, %d reuses)\n",
		accel.OffloadsGranted, accel.Reprograms, accel.TagReuses)
}
