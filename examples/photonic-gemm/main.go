// Photonic GEMM: multiply matrices on the simulated Flumen fabric and
// compare against float64 ground truth across converter precisions. The
// accelerator decomposes the matrix into mesh-sized blocks (Eq. 2-3 of the
// paper), programs each block into an SVD partition via the Clements
// algorithm, and propagates DAC-quantized inputs through the exact complex
// E-field transfer matrices — the "8-bit equivalent analog computation" of
// Sec 3.3.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"flumen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A 24×40 matrix against a 40-vector: 3×5 grid of 8×8 blocks.
	const rows, cols = 24, 40
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = 2*rng.Float64() - 1
		}
	}
	x := make([]float64, cols)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	want := make([]float64, rows)
	for i := range m {
		for j, v := range m[i] {
			want[i] += v * x[j]
		}
	}

	fmt.Printf("photonic MatVec: %d×%d matrix on a 16-port Flumen mesh (8×8 blocks)\n\n", rows, cols)
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "precision", "max |err|", "rms err", "programs", "energy (pJ)")
	for _, bits := range []int{4, 6, 8, 10, 12} {
		acc, err := flumen.NewAccelerator(16, 8)
		if err != nil {
			log.Fatal(err)
		}
		acc.SetPrecision(bits)
		got, err := acc.MatVec(m, x)
		if err != nil {
			log.Fatal(err)
		}
		var worst, sq float64
		for i := range got {
			d := math.Abs(got[i] - want[i])
			if d > worst {
				worst = d
			}
			sq += d * d
		}
		programs := acc.Stats().Programs
		fmt.Printf("%-10d %14.6f %14.6f %12d %12.1f\n",
			bits, worst, math.Sqrt(sq/float64(rows)), programs, acc.EnergyPJ())
	}

	fmt.Println("\nWDM-parallel matrix-matrix product (8 columns per programmed block):")
	xm := make([][]float64, cols)
	for i := range xm {
		xm[i] = make([]float64, 8)
		for j := range xm[i] {
			xm[i][j] = 2*rng.Float64() - 1
		}
	}
	acc, err := flumen.NewAccelerator(16, 8)
	if err != nil {
		log.Fatal(err)
	}
	got, err := acc.MatMul(m, xm)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := 0; i < rows; i++ {
		for j := 0; j < 8; j++ {
			var ref float64
			for k := 0; k < cols; k++ {
				ref += m[i][k] * xm[k][j]
			}
			if d := math.Abs(got[i][j] - ref); d > worst {
				worst = d
			}
		}
	}
	st := acc.Stats()
	programs, batches := st.Programs, st.Batches
	fmt.Printf("8-bit MatMul %d×%d·%d×8: max error %.4f, %d programs, %d λ-batches, %.1f pJ\n",
		rows, cols, cols, worst, programs, batches, acc.EnergyPJ())
}
