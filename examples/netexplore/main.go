// Network explorer: exercise the Flumen fabric's communication modes at
// the device level — point-to-point permutation routing with loss
// equalization, physical broadcast, and multicast — and compare the four
// NoP topologies' latency under increasing synthetic load.
package main

import (
	"fmt"
	"log"

	"flumen"
	"flumen/internal/noc"
)

func main() {
	// Device level: route a permutation and inspect path-length spread.
	acc, err := flumen.NewAccelerator(16, 8)
	if err != nil {
		log.Fatal(err)
	}
	perm := []int{5, 12, 0, 9, 14, 2, 7, 11, 1, 15, 4, 8, 13, 3, 10, 6}
	counts, err := acc.RoutePermutation(perm)
	if err != nil {
		log.Fatal(err)
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	fmt.Println("Flumen MZIM point-to-point routing (16 ports):")
	fmt.Printf("  permutation: %v\n", perm)
	fmt.Printf("  MZIs traversed per path: %v\n", counts)
	fmt.Printf("  spread %d..%d — the attenuator column equalizes this %d-MZI loss difference (Sec 3.1.2)\n\n",
		minC, maxC, maxC-minC)

	// Cycle level: latency vs load across topologies (a slice of Fig. 11).
	np := struct {
		ring, mesh, bus, mzim int
	}{560, 320, 256, 256}
	mk := []struct {
		name string
		f    func() noc.Network
	}{
		{"Ring", func() noc.Network { return noc.NewRing(16, np.ring, 4) }},
		{"Mesh", func() noc.Network { return noc.NewMesh(4, 4, np.mesh, 4) }},
		{"OptBus", func() noc.Network { return noc.NewOptBus(16, 8, np.bus) }},
		{"Flumen", func() noc.Network { return noc.NewMZIM(16, np.mzim, 3) }},
	}
	cfg := noc.DefaultRunConfig()
	cfg.MeasureCycles = 5000
	pattern := noc.Uniform(16)
	fmt.Println("uniform-random latency vs offered load (cycles):")
	fmt.Printf("%-12s", "load (Gbps)")
	for _, m := range mk {
		fmt.Printf(" %9s", m.name)
	}
	fmt.Println()
	for _, rate := range []float64{0.005, 0.02, 0.05, 0.1, 0.15} {
		fmt.Printf("%-12.0f", rate*640*2.5)
		for _, m := range mk {
			r := noc.RunSynthetic(m.f(), pattern, rate, cfg)
			if r.Saturated {
				fmt.Printf(" %9s", "sat")
			} else {
				fmt.Printf(" %9.1f", r.AvgLatency)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nFlumen's non-blocking crossbar keeps latency lowest until the")
	fmt.Println("per-port bandwidth limit; the shared-waveguide OptBus saturates first.")
}
