// Image blur end-to-end: blur a synthetic RGB image two ways — digitally,
// and through a photonic Flumen partition programmed with the Gaussian
// kernel's im2col matrix — then verify the photonic result pixel-by-pixel
// and run the full-system benchmark comparing the electrical mesh against
// Flumen with dynamic offload (the paper's Image Blur workload, Sec 4.2).
package main

import (
	"fmt"
	"log"
	"math"

	"flumen"
	"flumen/internal/workload"
)

func main() {
	const side = 64 // keep the numerical demo fast; the benchmark uses 256
	blur := workload.NewImageBlur(side, side)
	img := blur.RandomImage(7)
	ref := blur.Reference(img)

	// Photonic path: the 1×9 kernel matrix zero-pads into 8×8 blocks; the
	// accelerator streams every im2col patch through the programmed
	// partition at 8-bit precision.
	acc, err := flumen.NewAccelerator(16, 8)
	if err != nil {
		log.Fatal(err)
	}
	kernel := [][]float64{workload.GaussianKernel3x3}
	shape := blur.Shape()

	var worst, sum float64
	var count int
	for ch := 0; ch < 3; ch++ {
		cols := workload.Im2Col(shape, img[ch])
		// One patch per column; batch all patches as the RHS matrix.
		patches := make([][]float64, cols.Rows())
		for i := range patches {
			patches[i] = make([]float64, cols.Cols())
			for j := range patches[i] {
				patches[i][j] = real(cols.At(i, j))
			}
		}
		out, err := acc.MatMul(kernel, patches)
		if err != nil {
			log.Fatal(err)
		}
		for p := 0; p < shape.Patches(); p++ {
			want := ref[ch].At(p%shape.OutW(), p/shape.OutW(), 0)
			d := math.Abs(out[0][p] - want)
			if d > worst {
				worst = d
			}
			sum += d * d
			count++
		}
	}
	st := acc.Stats()
	programs, batches := st.Programs, st.Batches
	fmt.Printf("photonic blur of a %d×%d RGB image (8-bit analog):\n", side, side)
	fmt.Printf("  max pixel error %.5f, rms %.5f (pixel range [0,1))\n",
		worst, math.Sqrt(sum/float64(count)))
	fmt.Printf("  %d phase programs, %d wavelength batches, %.0f pJ photonic compute\n\n",
		programs, batches, acc.EnergyPJ())

	// Full-system benchmark at paper scale.
	cfg := flumen.DefaultConfig()
	mesh, err := flumen.RunBenchmark("ImageBlur", "Mesh", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fa, err := flumen.RunBenchmark("ImageBlur", "Flumen-A", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full-system Image Blur (256×256, 64 cores):")
	fmt.Printf("  Mesh:     %7d cycles  %8.1f µJ\n", mesh.Cycles, mesh.Energy.TotalPJ()/1e6)
	fmt.Printf("  Flumen-A: %7d cycles  %8.1f µJ  (%d kernels offloaded)\n",
		fa.Cycles, fa.Energy.TotalPJ()/1e6, fa.OffloadsGranted)
	fmt.Printf("  speedup %.2f×, energy gain %.2f×, EDP gain %.2f×\n",
		fa.SpeedupOver(mesh), fa.EnergyGainOver(mesh), fa.EDPGainOver(mesh))
}
