package flumen

// Integration tests: each benchmark's MZIM mapping (Sec 3.3 / Sec 4.2)
// executed end-to-end through the simulated photonic fabric at 8-bit
// equivalent precision, validated against the workload's digital reference
// mathematics.

import (
	"math"
	"testing"

	"flumen/internal/mat"
	"flumen/internal/workload"
)

func toFloatMatrix(d *mat.Dense) [][]float64 {
	out := make([][]float64, d.Rows())
	for i := range out {
		out[i] = make([]float64, d.Cols())
		for j := range out[i] {
			out[i][j] = real(d.At(i, j))
		}
	}
	return out
}

func TestIntegrationBlurThroughFabric(t *testing.T) {
	// The block-Toeplitz blur mapping through a real partition: one
	// output group per image position, all four column blocks programmed
	// photonically.
	b := workload.NewImageBlur(24, 24)
	img := b.RandomImage(21)
	ref := b.Reference(img)
	acc, err := NewAccelerator(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	op := toFloatMatrix(b.ToeplitzOperator(8))
	for _, pos := range [][2]int{{0, 3}, {8, 10}, {16, 23}} {
		x0, y := pos[0], pos[1]
		win := b.ToeplitzWindow(img[2], y, x0, 8)
		winCol := make([][]float64, len(win))
		for i, v := range win {
			winCol[i] = []float64{v}
		}
		out, err := acc.MatMul(op, winCol)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8 && x0+i < b.W; i++ {
			want := ref[2].At(x0+i, y, 0)
			if math.Abs(out[i][0]-want) > 0.05 {
				t.Fatalf("photonic blur at (%d,%d): %g vs %g", x0+i, y, out[i][0], want)
			}
		}
	}
}

func TestIntegrationVGGSliceThroughFabric(t *testing.T) {
	// A 16×32 slice of the FC layer (weights in the mesh, activations as
	// optical inputs), with bias added on the "core" side.
	v := workload.NewVGG16FCShape(16, 32)
	weights, bias, input := v.RandomLayer(22)
	ref := v.Reference(weights, bias, input)
	acc, err := NewAccelerator(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := acc.MatVec(toFloatMatrix(weights), input)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		got[i] += bias[i]
	}
	// Range of outputs ~ ±sqrt(32); 8-bit over 4 column blocks.
	for i := range got {
		if math.Abs(got[i]-ref[i]) > 0.25 {
			t.Fatalf("photonic FC output %d: %g vs %g", i, got[i], ref[i])
		}
	}
}

func TestIntegrationJPEGDCTThroughFabric(t *testing.T) {
	// The 8×8 DCT is orthogonal: it maps onto the full 8-input unitary
	// MZIM with unit singular values (Sec 5.4.1). Verify C·X·Cᵀ done as
	// two photonic matmuls reproduces the digital 2D DCT.
	j := workload.NewJPEG(32, 32)
	plane := j.RandomPlane(23)
	c := workload.DCTMatrix(8)
	cF := toFloatMatrix(c)
	block := j.Block(plane, 1, 2)
	want := workload.DCT2D(c, block)

	acc, err := NewAccelerator(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Pass 1: Y = C·X.
	y, err := acc.MatMul(cF, toFloatMatrix(block))
	if err != nil {
		t.Fatal(err)
	}
	// Pass 2: Z = Y·Cᵀ computed as (C·Yᵀ)ᵀ — the transposed-data trick the
	// offload stream describes.
	yT := make([][]float64, 8)
	for i := range yT {
		yT[i] = make([]float64, 8)
		for k := range yT[i] {
			yT[i][k] = y[k][i]
		}
	}
	zT, err := acc.MatMul(cF, yT)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients span roughly ±8·255·... here inputs are ±127ish; use a
	// relative bound on the largest coefficient.
	var scale float64
	for i := 0; i < 8; i++ {
		for k := 0; k < 8; k++ {
			if a := math.Abs(real(want.At(i, k))); a > scale {
				scale = a
			}
		}
	}
	for i := 0; i < 8; i++ {
		for k := 0; k < 8; k++ {
			got := zT[k][i] // transpose back
			if math.Abs(got-real(want.At(i, k))) > 0.03*scale+1 {
				t.Fatalf("photonic DCT coeff (%d,%d): %g vs %g", i, k, got, real(want.At(i, k)))
			}
		}
	}
}

func TestIntegrationRotationThroughFabric(t *testing.T) {
	// The homogeneous rotation matrix is orthogonal, so it programs with
	// unit attenuation into a 4-input partition and needs no partial sums.
	r := workload.NewRotation3D(64, 16)
	verts := r.RandomObject(24)
	ref := r.Reference(verts, 5)
	m := workload.RotationMatrix(2 * math.Pi * 5 / 16)
	acc, err := NewAccelerator(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All vertices as RHS columns — WDM batching.
	rhs := make([][]float64, 4)
	for i := range rhs {
		rhs[i] = make([]float64, len(verts))
		for vi, v := range verts {
			rhs[i][vi] = v[i]
		}
	}
	out, err := acc.MatMul(toFloatMatrix(m), rhs)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range verts {
		for c := 0; c < 4; c++ {
			if math.Abs(out[c][vi]-ref[vi][c]) > 0.05 {
				t.Fatalf("photonic rotation vertex %d coord %d: %g vs %g", vi, c, out[c][vi], ref[vi][c])
			}
		}
	}
}

func TestIntegrationResNetSliceThroughFabric(t *testing.T) {
	// A small conv slice via im2col: kernel matrix in the mesh, patches
	// as optical inputs, partial sums accumulated by MatMul's block loop.
	r := workload.NewResNetConv3Shape(12, 4, 4)
	in, kernels := r.RandomLayer(25)
	ref := r.Reference(in, kernels)
	sh := r.Shape()
	km := workload.KernelMatrix(sh, kernels)
	cols := workload.Im2Col(sh, in)
	acc, err := NewAccelerator(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := acc.MatMul(toFloatMatrix(km), toFloatMatrix(cols))
	if err != nil {
		t.Fatal(err)
	}
	// PatchLen = 36: 5 block columns of partial sums at 8 bits.
	var worst float64
	for k := 0; k < sh.NumKernels; k++ {
		for p := 0; p < sh.Patches(); p++ {
			want := ref.At(p%sh.OutW(), p/sh.OutW(), k)
			if d := math.Abs(out[k][p] - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.6 {
		t.Fatalf("photonic conv worst error %g", worst)
	}
}
