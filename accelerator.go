package flumen

import (
	"fmt"
	"math"
	"math/rand"

	"flumen/internal/energy"
	"flumen/internal/mat"
	"flumen/internal/optics"
	"flumen/internal/photonic"
	"flumen/internal/workload"
)

// Accelerator performs matrix algebra on a simulated Flumen photonic
// fabric. Matrices are zero-padded and split into BlockSize×BlockSize
// sub-blocks (Eq. 2-3); each block is scaled by its spectral norm,
// decomposed via SVD, programmed into a mesh partition with the Clements
// algorithm, and evaluated by exact complex E-field propagation. Inputs
// and detected outputs pass through DAC/ADC quantizers, reproducing the
// paper's 8-bit equivalent analog precision.
type Accelerator struct {
	fabric    *photonic.FlumenMesh
	partition *photonic.Partition
	quant     optics.Quantizer
	noise     *optics.NoiseModel
	ep        energy.Params

	blockSize int
	lambdas   int

	energyPJ float64
	programs int64
	batches  int64
}

// NewAccelerator builds an accelerator over a `ports`-input Flumen mesh
// with one compute partition of the given block size. ports must be a
// positive multiple of 4; blockSize must be even, ≥2 and ≤ ports/2.
func NewAccelerator(ports, blockSize int) (*Accelerator, error) {
	if ports < 4 || ports%4 != 0 {
		return nil, fmt.Errorf("flumen: ports must be a positive multiple of 4, got %d", ports)
	}
	fabric := photonic.NewFlumenMesh(ports)
	part, err := fabric.NewPartition(0, blockSize)
	if err != nil {
		return nil, err
	}
	return &Accelerator{
		fabric:    fabric,
		partition: part,
		quant:     optics.NewQuantizer(8, 1),
		ep:        energy.Default(),
		blockSize: blockSize,
		lambdas:   8,
	}, nil
}

// SetPrecision configures the DAC/ADC bit depth (default 8).
func (a *Accelerator) SetPrecision(bits int) { a.quant = optics.NewQuantizer(bits, 1) }

// EnableNoise turns on analog detection noise (laser RIN plus a thermal
// floor, per the Table 2 receiver model) with the given seed; seedless
// deterministic runs are the default. Pass the same seed to reproduce a
// noisy run exactly.
func (a *Accelerator) EnableNoise(seed int64) {
	n := optics.DefaultNoise(1, rand.New(rand.NewSource(seed)))
	a.noise = &n
}

// DisableNoise restores deterministic detection.
func (a *Accelerator) DisableNoise() { a.noise = nil }

// Precision returns the converter bit depth.
func (a *Accelerator) Precision() int { return a.quant.Bits }

// BlockSize returns the compute partition size.
func (a *Accelerator) BlockSize() int { return a.blockSize }

// EnergyPJ returns the accumulated photonic compute energy (Fig. 12b
// model).
func (a *Accelerator) EnergyPJ() float64 { return a.energyPJ }

// Stats returns the phase-programming and vector-batch counts.
func (a *Accelerator) Stats() (programs, batches int64) { return a.programs, a.batches }

// MatVec computes y = M·x photonically. M is row-major.
func (a *Accelerator) MatVec(m [][]float64, x []float64) ([]float64, error) {
	if len(m) == 0 || len(m[0]) != len(x) {
		return nil, fmt.Errorf("flumen: MatVec dimension mismatch: %d×%d · %d", len(m), colsOf(m), len(x))
	}
	cols := [][]float64{x}
	out, err := a.MatMul(m, transpose(cols))
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(out))
	for i := range out {
		y[i] = out[i][0]
	}
	return y, nil
}

// MatMul computes C = M·X photonically, batching up to 8 columns of X per
// programmed block (the WDM-parallel MVMs of Sec 3.3.1).
func (a *Accelerator) MatMul(m, x [][]float64) ([][]float64, error) {
	rows, inner := len(m), colsOf(m)
	if rows == 0 || inner == 0 {
		return nil, fmt.Errorf("flumen: empty matrix")
	}
	if len(x) != inner {
		return nil, fmt.Errorf("flumen: MatMul dimension mismatch: %d×%d · %d×%d", rows, inner, len(x), colsOf(x))
	}
	nrhs := colsOf(x)
	md := realDense(m)
	xd := realDense(x)

	n := a.blockSize
	pm := mat.PadTo(md, n)
	px := mat.PadTo(xd, n)
	bi := pm.Rows() / n
	bj := pm.Cols() / n
	out := mat.New(pm.Rows(), px.Cols())

	for c := 0; c < bj; c++ {
		for r := 0; r < bi; r++ {
			blk := mat.Block(pm, n, r, c)
			if err := a.partition.ProgramScaled(blk); err != nil {
				return nil, err
			}
			a.programs++
			a.energyPJ += a.ep.FlumenProgramPJ(n)
			// Stream the right-hand-side columns in λ batches.
			for v0 := 0; v0 < nrhs; v0 += a.lambdas {
				v1 := min(v0+a.lambdas, nrhs)
				for v := v0; v < v1; v++ {
					seg := make([]complex128, n)
					for i := 0; i < n; i++ {
						seg[i] = px.At(c*n+i, v)
					}
					// Scale inputs into the modulator's full-scale range and
					// quantize at the DAC.
					scale := maxAbs(seg)
					if scale == 0 {
						continue
					}
					for i := range seg {
						seg[i] /= complex(scale, 0)
					}
					a.quant.QuantizeComplexVec(seg)
					res := a.partition.MVM(seg)
					if a.noise != nil {
						for i := range res {
							res[i] = complex(a.noise.Apply(real(res[i])), a.noise.Apply(imag(res[i])))
						}
					}
					// ADC quantization of detected outputs, in the
					// normalized (pre-spectral-rescale) domain. A
					// unit-spectral-norm block driven by |x|∞ ≤ 1 inputs
					// can emit field amplitudes up to √n, so the ADC full
					// scale is sized to √n.
					if a.partition.Scale != 0 {
						adc := optics.NewQuantizer(a.quant.Bits, math.Sqrt(float64(n)))
						for i := range res {
							res[i] /= complex(a.partition.Scale, 0)
						}
						adc.QuantizeComplexVec(res)
						for i := range res {
							res[i] *= complex(a.partition.Scale, 0)
						}
					}
					for i := 0; i < n; i++ {
						out.Set(r*n+i, v, out.At(r*n+i, v)+res[i]*complex(scale, 0))
					}
				}
				a.batches++
				a.energyPJ += a.ep.FlumenVectorsPJ(n, v1-v0)
			}
		}
	}
	// Truncate padding and convert to real.
	result := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		result[i] = make([]float64, nrhs)
		for j := 0; j < nrhs; j++ {
			result[i][j] = real(out.At(i, j))
		}
	}
	return result, nil
}

// Conv2D convolves a stack of input channels with a set of kernels on the
// photonic fabric, using the im2col lowering of Fig. 7: the kernel matrix
// is programmed into mesh partitions block by block and every receptive
// field streams through as an optical input vector.
//
// input is indexed [channel][y][x]; kernels is indexed
// [kernel][channel][ky][kx]. The result is indexed [kernel][y][x] with
// dimensions determined by stride and pad.
func (a *Accelerator) Conv2D(input [][][]float64, kernels [][][][]float64, stride, pad int) ([][][]float64, error) {
	if len(input) == 0 || len(input[0]) == 0 || len(input[0][0]) == 0 {
		return nil, fmt.Errorf("flumen: Conv2D empty input")
	}
	if len(kernels) == 0 || len(kernels[0]) != len(input) {
		return nil, fmt.Errorf("flumen: Conv2D kernel channel count %d does not match input %d",
			len(kernels[0]), len(input))
	}
	shape := workload.ConvShape{
		InW: len(input[0][0]), InH: len(input[0]), InC: len(input),
		KH: len(kernels[0][0]), KW: len(kernels[0][0][0]),
		NumKernels: len(kernels), Stride: stride, Pad: pad,
	}
	shape.Validate()
	vol := workload.NewVolume(shape.InW, shape.InH, shape.InC)
	for c := range input {
		for y := range input[c] {
			for x := range input[c][y] {
				vol.Set(x, y, c, input[c][y][x])
			}
		}
	}
	ravel := make([][]float64, shape.NumKernels)
	for k := range kernels {
		ravel[k] = make([]float64, 0, shape.PatchLen())
		for c := 0; c < shape.InC; c++ {
			for ky := 0; ky < shape.KH; ky++ {
				for kx := 0; kx < shape.KW; kx++ {
					ravel[k] = append(ravel[k], kernels[k][c][ky][kx])
				}
			}
		}
	}
	km := workload.KernelMatrix(shape, ravel)
	cols := workload.Im2Col(shape, vol)
	prod, err := a.MatMul(denseToFloat(km), denseToFloat(cols))
	if err != nil {
		return nil, err
	}
	out := make([][][]float64, shape.NumKernels)
	for k := range out {
		out[k] = make([][]float64, shape.OutH())
		for y := range out[k] {
			out[k][y] = make([]float64, shape.OutW())
			for x := range out[k][y] {
				out[k][y][x] = prod[k][y*shape.OutW()+x]
			}
		}
	}
	return out, nil
}

func denseToFloat(d *mat.Dense) [][]float64 {
	out := make([][]float64, d.Rows())
	for i := range out {
		out[i] = make([]float64, d.Cols())
		for j := range out[i] {
			out[i][j] = real(d.At(i, j))
		}
	}
	return out
}

// RoutePermutation demonstrates the fabric's communication mode: it routes
// input port i to output perm[i] and returns the per-port MZI path counts
// whose spread the attenuator column equalizes.
func (a *Accelerator) RoutePermutation(perm []int) ([]int, error) {
	if len(perm) != a.fabric.N() {
		return nil, fmt.Errorf("flumen: permutation length %d, fabric has %d ports", len(perm), a.fabric.N())
	}
	a.fabric.RoutePermutation(perm)
	counts := make([]int, len(perm))
	for src := range perm {
		counts[src], _ = a.fabric.PathMZICount(src)
	}
	// Restore the compute partition (routing reset the fabric).
	part, err := a.fabric.NewPartition(0, a.blockSize)
	if err != nil {
		return nil, err
	}
	a.partition = part
	return counts, nil
}

// Ports returns the fabric port count.
func (a *Accelerator) Ports() int { return a.fabric.N() }

func colsOf(m [][]float64) int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

func transpose(m [][]float64) [][]float64 {
	r, c := len(m), colsOf(m)
	out := make([][]float64, c)
	for j := 0; j < c; j++ {
		out[j] = make([]float64, r)
		for i := 0; i < r; i++ {
			out[j][i] = m[i][j]
		}
	}
	return out
}

func realDense(m [][]float64) *mat.Dense {
	d := mat.New(len(m), len(m[0]))
	for i, row := range m {
		if len(row) != len(m[0]) {
			panic("flumen: ragged matrix")
		}
		for j, v := range row {
			d.Set(i, j, complex(v, 0))
		}
	}
	return d
}

func maxAbs(xs []complex128) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(real(x)); a > m {
			m = a
		}
		if a := math.Abs(imag(x)); a > m {
			m = a
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
