package flumen

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flumen/internal/energy"
	"flumen/internal/fabric"
	"flumen/internal/mat"
	"flumen/internal/optics"
	"flumen/internal/photonic"
	"flumen/internal/trace"
	"flumen/internal/workload"
)

// Accelerator performs matrix algebra on a simulated Flumen photonic
// fabric. Matrices are zero-padded and split into BlockSize×BlockSize
// sub-blocks (Eq. 2-3); each block is scaled by its spectral norm,
// decomposed via SVD, programmed into a mesh partition with the Clements
// algorithm, and evaluated by exact complex E-field propagation. Inputs
// and detected outputs pass through DAC/ADC quantizers, reproducing the
// paper's 8-bit equivalent analog precision.
//
// The fabric is carved into ports/blockSize independent compute
// partitions (the k/2 concurrent sub-meshes of Sec 3.2); MatMul/Conv2D
// dispatch block work items across them with a worker pool (see
// engine.go), and an LRU weight-program cache amortizes the SVD +
// Clements decomposition across calls that reuse the same weights.
type Accelerator struct {
	fabric     *photonic.FlumenMesh
	partitions []*photonic.Partition
	// pool hands out exclusive use of one partition per worker. It is
	// created once and kept across RoutePermutation rebuilds so blocked
	// receivers never observe a stale channel.
	pool chan *photonic.Partition

	// fab, when attached, replaces the pool as the sole grantor of
	// partitions: every work item then runs under a time-bounded compute
	// lease and yields at block-item granularity on preemption.
	fab *fabric.Arbiter

	// mu guards the call-time configuration (quant, workers, cache, noise
	// switches); a consistent snapshot is taken at the top of each matMul.
	mu        sync.RWMutex
	quant     optics.Quantizer
	workers   int
	cache     *programCache
	noiseOn   bool
	noiseSeed int64
	// compiled enables the batched compiled-kernel propagation path in the
	// engine (default true; see SetCompiledKernels).
	compiled bool

	// Compiled-kernel counters (see KernelStats).
	kernelCompiles  atomic.Int64
	kernelReuses    atomic.Int64
	kernelFallbacks atomic.Int64

	// partIdx maps each partition back to its index so pool-mode checkouts
	// know which health/fault record they hold; rebuilt with partitions.
	partIdx map[*photonic.Partition]int
	// faults holds the per-partition runtime fault injectors (nil entries
	// = pristine device); replaced copy-on-write by InjectFaults so
	// call-time snapshots never see a torn slice.
	faults []*photonic.FaultInjector
	// health, when enabled, runs calibration probes between work items and
	// quarantines/recalibrates degraded partitions (see health.go).
	health *healthMonitor

	// noiseCall numbers the matMul calls of one noisy run so every call —
	// and every (block-row, block-col) item within it — draws from its own
	// deterministic noise stream regardless of worker scheduling.
	noiseCall atomic.Int64

	meter energy.Meter
	ep    energy.Params

	blockSize int
	lambdas   int
}

// NewAccelerator builds an accelerator over a `ports`-input Flumen mesh
// carved into ports/blockSize compute partitions. ports must be a positive
// multiple of 4; blockSize must be even, ≥2 and ≤ ports/2.
func NewAccelerator(ports, blockSize int) (*Accelerator, error) {
	if ports < 4 || ports%4 != 0 {
		return nil, fmt.Errorf("flumen: ports must be a positive multiple of 4, got %d", ports)
	}
	a := &Accelerator{
		fabric:    photonic.NewFlumenMesh(ports),
		quant:     optics.NewQuantizer(8, 1),
		ep:        energy.Default(),
		blockSize: blockSize,
		lambdas:   8,
		cache:     newProgramCache(DefaultProgramCacheSize),
		compiled:  true,
	}
	if err := a.buildPartitions(); err != nil {
		return nil, err
	}
	a.workers = len(a.partitions)
	return a, nil
}

// buildPartitions carves the fabric into as many blockSize partitions as
// fit and (re)fills the worker pool. Invalid block sizes surface as the
// canonical NewPartition error for the first region.
func (a *Accelerator) buildPartitions() error {
	count := 1
	if a.blockSize >= 2 && a.blockSize <= a.fabric.N()/2 {
		count = a.fabric.N() / a.blockSize
	}
	parts := make([]*photonic.Partition, 0, count)
	for i := 0; i < count; i++ {
		p, err := a.fabric.NewPartition(i*a.blockSize, a.blockSize)
		if err != nil {
			return err
		}
		parts = append(parts, p)
	}
	idx := make(map[*photonic.Partition]int, len(parts))
	for i, p := range parts {
		idx[p] = i
	}
	a.mu.Lock()
	a.partitions = parts
	a.partIdx = idx
	if len(a.faults) != len(parts) {
		a.faults = make([]*photonic.FaultInjector, len(parts))
	}
	a.mu.Unlock()
	if a.pool == nil {
		a.pool = make(chan *photonic.Partition, count)
	}
	for _, p := range parts {
		a.pool <- p
	}
	return nil
}

// SetPrecision configures the DAC/ADC bit depth (default 8).
func (a *Accelerator) SetPrecision(bits int) {
	a.mu.Lock()
	a.quant = optics.NewQuantizer(bits, 1)
	a.mu.Unlock()
}

// EnableNoise turns on analog detection noise (laser RIN plus a thermal
// floor, per the Table 2 receiver model) with the given seed; seedless
// deterministic runs are the default. Pass the same seed to reproduce a
// noisy run exactly — reproducibility holds for any worker count because
// each work item derives its own noise stream from (seed, call, block).
func (a *Accelerator) EnableNoise(seed int64) {
	a.mu.Lock()
	a.noiseOn = true
	a.noiseSeed = seed
	a.mu.Unlock()
	a.noiseCall.Store(0)
}

// DisableNoise restores deterministic detection.
func (a *Accelerator) DisableNoise() {
	a.mu.Lock()
	a.noiseOn = false
	a.mu.Unlock()
}

// Precision returns the converter bit depth.
func (a *Accelerator) Precision() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.quant.Bits
}

// BlockSize returns the compute partition size.
func (a *Accelerator) BlockSize() int { return a.blockSize }

// NumPartitions returns the number of independent compute partitions the
// fabric is carved into (ports/blockSize).
func (a *Accelerator) NumPartitions() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.partitions)
}

// SetWorkers sets the number of concurrent workers used by MatMul/Conv2D,
// clamped to [1, NumPartitions]. The default is NumPartitions. Noiseless
// results are bitwise-identical for every worker count.
func (a *Accelerator) SetWorkers(n int) {
	a.mu.Lock()
	if n < 1 {
		n = 1
	}
	if n > len(a.partitions) {
		n = len(a.partitions)
	}
	a.workers = n
	a.mu.Unlock()
}

// Workers returns the configured worker count.
func (a *Accelerator) Workers() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.workers
}

// SetProgramCacheSize resizes the weight-program cache to hold up to n
// compiled block programs (default DefaultProgramCacheSize). n ≤ 0
// disables caching. Resizing clears the cache and its statistics.
func (a *Accelerator) SetProgramCacheSize(n int) {
	a.mu.Lock()
	if n <= 0 {
		a.cache = nil
	} else {
		a.cache = newProgramCache(n)
	}
	a.mu.Unlock()
}

// SetCompiledKernels toggles the engine's batched compiled-kernel
// propagation path (default on): with it enabled, every work item streams
// all of its right-hand-side columns through the block program's compiled
// SoA plan in one multi-RHS pass. With it disabled — or whenever a fault
// injector is active on the executing partition, which corrupts the
// program per item — columns run the interpreted per-vector lattice
// instead. Both paths produce bitwise-identical results; the toggle exists
// for benchmarking and as an escape hatch.
func (a *Accelerator) SetCompiledKernels(on bool) {
	a.mu.Lock()
	a.compiled = on
	a.mu.Unlock()
}

// CompiledKernels reports whether the batched compiled-kernel path is
// enabled.
func (a *Accelerator) CompiledKernels() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.compiled
}

// KernelStats reports compiled-kernel effectiveness.
type KernelStats struct {
	// PlanCompiles and PlanReuses count work items that compiled a new
	// propagation plan vs reused one cached on the block program — reuse
	// rides the weight-program cache, so a warm cache makes compilation
	// disappear from the steady state.
	PlanCompiles int64
	PlanReuses   int64
	// PlanEvictions counts compiled plans dropped along with their program
	// by the weight-program cache's LRU.
	PlanEvictions int64
	// Fallbacks counts work items that ran the interpreted per-vector path
	// because a fault injector was active on the executing partition.
	Fallbacks int64
}

// ProgramCacheStats reports hit/miss/eviction counts and occupancy of the
// weight-program cache (zero value when caching is disabled).
func (a *Accelerator) ProgramCacheStats() CacheStats {
	a.mu.RLock()
	c := a.cache
	a.mu.RUnlock()
	if c == nil {
		return CacheStats{}
	}
	return c.stats()
}

// EnergyPJ returns the accumulated photonic compute energy (Fig. 12b
// model).
func (a *Accelerator) EnergyPJ() float64 { return a.meter.EnergyPJ() }

// PrewarmWeights compiles every block program of weight matrix m into the
// weight-program cache — including each program's compiled propagation plan
// when the batched kernel path is enabled — and pins the entries against
// LRU eviction. A later MatMul/MatVec/Conv2D against the same raw bits then
// pays neither the SVD + Clements decomposition nor the plan compile on its
// first request: this is the model registry's warm-start hook. Returns the
// number of block programs pinned (a matrix whose blocks repeat pins the
// shared entry once per occurrence; UnpinWeights is exactly symmetric).
// With caching disabled the call is a no-op.
//
// Prewarming performs no physical programming and meters no energy: it
// fills the compilation cache, it does not touch the fabric.
func (a *Accelerator) PrewarmWeights(m [][]float64) (int, error) {
	if len(m) == 0 || len(m[0]) == 0 {
		return 0, fmt.Errorf("flumen: empty matrix")
	}
	for i, row := range m {
		if len(row) != len(m[0]) {
			return 0, fmt.Errorf("flumen: ragged matrix: row %d has %d columns, row 0 has %d", i, len(row), len(m[0]))
		}
	}
	a.mu.RLock()
	cache := a.cache
	compiled := a.compiled
	a.mu.RUnlock()
	if cache == nil {
		return 0, nil
	}
	n := a.blockSize
	pm := mat.PadTo(realDense(m), n)
	pinned := 0
	for c := 0; c < pm.Cols()/n; c++ {
		for r := 0; r < pm.Rows()/n; r++ {
			blk := mat.Block(pm, n, r, c)
			bp, err := a.programFor(blk, cache)
			if err != nil {
				return pinned, err
			}
			if compiled {
				if _, compiledNow := bp.Plan(); compiledNow {
					a.kernelCompiles.Add(1)
				} else {
					a.kernelReuses.Add(1)
				}
			}
			if cache.pin(blk.Fingerprint()) {
				pinned++
			}
		}
	}
	return pinned, nil
}

// UnpinWeights releases the pins PrewarmWeights took for matrix m (one per
// block occurrence), returning the entries to normal LRU lifetime. Reports
// how many pins were released; weights that were never prewarmed — or a
// cache that has since been resized, which drops all pins — release zero.
func (a *Accelerator) UnpinWeights(m [][]float64) int {
	if len(m) == 0 || len(m[0]) == 0 {
		return 0
	}
	for _, row := range m {
		if len(row) != len(m[0]) {
			return 0
		}
	}
	a.mu.RLock()
	cache := a.cache
	a.mu.RUnlock()
	if cache == nil {
		return 0
	}
	n := a.blockSize
	pm := mat.PadTo(realDense(m), n)
	released := 0
	for c := 0; c < pm.Cols()/n; c++ {
		for r := 0; r < pm.Rows()/n; r++ {
			if cache.unpin(mat.Block(pm, n, r, c).Fingerprint()) {
				released++
			}
		}
	}
	return released
}

// AttachFabric places the accelerator's partitions under the given
// arbiter's control: every MatMul/Conv2D work item then runs under a
// compute lease acquired from the arbiter, blocks while the fabric carries
// NoP traffic, and yields at block-item granularity when a lease is
// preempted. The arbiter must manage exactly NumPartitions partitions, and
// attachment requires all compute to be drained (the internal free pool is
// emptied so the arbiter becomes the sole grantor).
func (a *Accelerator) AttachFabric(arb *fabric.Arbiter) error {
	if arb == nil {
		return fmt.Errorf("flumen: nil fabric arbiter")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fab != nil {
		return fmt.Errorf("flumen: fabric arbiter already attached")
	}
	if got := arb.Partitions(); got != len(a.partitions) {
		return fmt.Errorf("flumen: arbiter manages %d partitions, accelerator has %d",
			got, len(a.partitions))
	}
	drained := make([]*photonic.Partition, 0, len(a.partitions))
	for i := 0; i < len(a.partitions); i++ {
		select {
		case p := <-a.pool:
			drained = append(drained, p)
		default:
			for _, p := range drained {
				a.pool <- p
			}
			return fmt.Errorf("flumen: cannot attach fabric arbiter while compute is in flight")
		}
	}
	a.fab = arb
	return nil
}

// Fabric returns the attached fabric arbiter, or nil when the accelerator
// owns its partitions outright.
func (a *Accelerator) Fabric() *fabric.Arbiter {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.fab
}

// Stats is a read-only snapshot of the accelerator's observable state:
// fabric geometry, engine configuration, accumulated work counters, and
// weight-program cache effectiveness. It is safe to take concurrently with
// compute calls; counters reflect work merged so far.
type Stats struct {
	// Ports is the fabric port count; BlockSize the compute partition size.
	Ports     int
	BlockSize int
	// Partitions is the number of independent compute partitions; Workers
	// the configured dispatch concurrency.
	Partitions int
	Workers    int
	// Precision is the DAC/ADC bit depth.
	Precision int
	// EnergyPJ is the accumulated photonic compute energy; Programs and
	// Batches are the phase-programming and λ-batch counts.
	EnergyPJ float64
	Programs int64
	Batches  int64
	// Cache reports weight-program cache hit/miss/eviction counts (zero
	// value when caching is disabled).
	Cache CacheStats
	// Kernel reports compiled-kernel plan compile/reuse/eviction and
	// interpreter-fallback counts.
	Kernel KernelStats
	// Fabric is the attached dynamic-fabric arbiter's snapshot (nil when
	// the accelerator owns its partitions outright).
	Fabric *fabric.Stats
	// Health is the device-health subsystem snapshot (nil when the monitor
	// was never enabled).
	Health *HealthStats
}

// Stats returns a consistent read-only snapshot of geometry, configuration,
// work counters and cache statistics, so observers (e.g. a serving layer's
// /metrics endpoint) never reach into accelerator internals.
func (a *Accelerator) Stats() Stats {
	a.mu.RLock()
	s := Stats{
		Ports:      a.fabric.N(),
		BlockSize:  a.blockSize,
		Partitions: len(a.partitions),
		Workers:    a.workers,
		Precision:  a.quant.Bits,
	}
	c := a.cache
	fab := a.fab
	hm := a.health
	faults := a.faults
	a.mu.RUnlock()
	s.EnergyPJ = a.meter.EnergyPJ()
	s.Programs, s.Batches = a.meter.Counts()
	s.Kernel = KernelStats{
		PlanCompiles: a.kernelCompiles.Load(),
		PlanReuses:   a.kernelReuses.Load(),
		Fallbacks:    a.kernelFallbacks.Load(),
	}
	if c != nil {
		s.Cache = c.stats()
		s.Kernel.PlanEvictions = c.planEvictionCount()
	}
	if fab != nil {
		fs := fab.Stats()
		s.Fabric = &fs
	}
	if hm != nil {
		hs := hm.snapshot(faults)
		s.Health = &hs
	}
	return s
}

// MatVec computes y = M·x photonically. M is row-major.
func (a *Accelerator) MatVec(m [][]float64, x []float64) ([]float64, error) {
	return a.MatVecCtx(context.Background(), m, x)
}

// MatVecCtx is MatVec with cooperative cancellation: when ctx is cancelled
// or its deadline passes, dispatch stops before the remaining block work
// items run and the context's error is returned.
func (a *Accelerator) MatVecCtx(ctx context.Context, m [][]float64, x []float64) ([]float64, error) {
	if len(m) == 0 || len(m[0]) != len(x) {
		return nil, fmt.Errorf("flumen: MatVec dimension mismatch: %d×%d · %d", len(m), colsOf(m), len(x))
	}
	xd := mat.New(len(x), 1)
	for i, v := range x {
		xd.Set(i, 0, complex(v, 0))
	}
	out, err := a.matMulCtx(ctx, realDense(m), xd)
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(m))
	for i := range y {
		y[i] = real(out.At(i, 0))
	}
	return y, nil
}

// MatMul computes C = M·X photonically, batching up to 8 columns of X per
// programmed block (the WDM-parallel MVMs of Sec 3.3.1). Block work items
// run across the partition pool; see engine.go for the dispatch and
// determinism story.
func (a *Accelerator) MatMul(m, x [][]float64) ([][]float64, error) {
	return a.MatMulCtx(context.Background(), m, x)
}

// MatMulCtx is MatMul with cooperative cancellation: when ctx is cancelled
// or its deadline passes, dispatch stops before the remaining block work
// items run and the context's error is returned. A call that arrives with
// an already-cancelled context performs no work at all. Each right-hand-side
// column's result is independent of every other column, so concatenating
// the column sets of several calls that share M into one MatMulCtx yields
// bitwise-identical per-column results (the property the serving layer's
// batcher relies on).
func (a *Accelerator) MatMulCtx(ctx context.Context, m, x [][]float64) ([][]float64, error) {
	rows, inner := len(m), colsOf(m)
	if rows == 0 || inner == 0 {
		return nil, fmt.Errorf("flumen: empty matrix")
	}
	if len(x) != inner {
		return nil, fmt.Errorf("flumen: MatMul dimension mismatch: %d×%d · %d×%d", rows, inner, len(x), colsOf(x))
	}
	nrhs := colsOf(x)
	out, err := a.matMulCtx(ctx, realDense(m), realDense(x))
	if err != nil {
		return nil, err
	}
	// Truncate padding and convert to real.
	result := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		result[i] = make([]float64, nrhs)
		for j := 0; j < nrhs; j++ {
			result[i][j] = real(out.At(i, j))
		}
	}
	return result, nil
}

// Conv2D convolves a stack of input channels with a set of kernels on the
// photonic fabric, using the im2col lowering of Fig. 7: the kernel matrix
// is programmed into mesh partitions block by block and every receptive
// field streams through as an optical input vector. Because the kernel
// matrix is identical across calls, its block programs hit the weight
// cache and repeated convolutions skip the SVD + Clements decomposition.
//
// input is indexed [channel][y][x]; kernels is indexed
// [kernel][channel][ky][kx]. The result is indexed [kernel][y][x] with
// dimensions determined by stride and pad.
func (a *Accelerator) Conv2D(input [][][]float64, kernels [][][][]float64, stride, pad int) ([][][]float64, error) {
	return a.Conv2DCtx(context.Background(), input, kernels, stride, pad)
}

// Conv2DCtx is Conv2D with cooperative cancellation: when ctx is cancelled
// or its deadline passes, dispatch stops before the remaining block work
// items run and the context's error is returned.
func (a *Accelerator) Conv2DCtx(ctx context.Context, input [][][]float64, kernels [][][][]float64, stride, pad int) ([][][]float64, error) {
	if len(input) == 0 || len(input[0]) == 0 || len(input[0][0]) == 0 {
		return nil, fmt.Errorf("flumen: Conv2D empty input")
	}
	if len(kernels) == 0 || len(kernels[0]) != len(input) {
		return nil, fmt.Errorf("flumen: Conv2D kernel channel count %d does not match input %d",
			len(kernels[0]), len(input))
	}
	shape := workload.ConvShape{
		InW: len(input[0][0]), InH: len(input[0]), InC: len(input),
		KH: len(kernels[0][0]), KW: len(kernels[0][0][0]),
		NumKernels: len(kernels), Stride: stride, Pad: pad,
	}
	shape.Validate()
	// The CPU-side im2col lowering (volume packing, kernel ravel, patch
	// extraction) is real per-request work a latency breakdown must not
	// lose; for traced requests it books under the compute stage alongside
	// the photonic propagation it feeds.
	lowerStart := time.Now()
	vol := workload.NewVolume(shape.InW, shape.InH, shape.InC)
	for c := range input {
		for y := range input[c] {
			for x := range input[c][y] {
				vol.Set(x, y, c, input[c][y][x])
			}
		}
	}
	ravel := make([][]float64, shape.NumKernels)
	for k := range kernels {
		ravel[k] = make([]float64, 0, shape.PatchLen())
		for c := 0; c < shape.InC; c++ {
			for ky := 0; ky < shape.KH; ky++ {
				for kx := 0; kx < shape.KW; kx++ {
					ravel[k] = append(ravel[k], kernels[k][c][ky][kx])
				}
			}
		}
	}
	km := workload.KernelMatrix(shape, ravel)
	cols := workload.Im2Col(shape, vol)
	if rec := trace.FromContext(ctx); rec != nil {
		rec.Add(trace.StageCompute, time.Since(lowerStart))
	}
	prod, err := a.matMulCtx(ctx, km, cols)
	if err != nil {
		return nil, err
	}
	out := make([][][]float64, shape.NumKernels)
	for k := range out {
		out[k] = make([][]float64, shape.OutH())
		for y := range out[k] {
			out[k][y] = make([]float64, shape.OutW())
			for x := range out[k][y] {
				out[k][y][x] = real(prod.At(k, y*shape.OutW()+x))
			}
		}
	}
	return out, nil
}

// RoutePermutation demonstrates the fabric's communication mode: it routes
// input port i to output perm[i] and returns the per-port MZI path counts
// whose spread the attenuator column equalizes. It waits for all in-flight
// compute work to drain before reconfiguring the fabric.
func (a *Accelerator) RoutePermutation(perm []int) ([]int, error) {
	if len(perm) != a.fabric.N() {
		return nil, fmt.Errorf("flumen: permutation length %d, fabric has %d ports", len(perm), a.fabric.N())
	}
	if a.Fabric() != nil {
		// With an arbiter attached the pool is permanently drained and the
		// NoP side owns traffic-mode routing; re-routing here would race the
		// arbiter's grants.
		return nil, fmt.Errorf("flumen: cannot re-route fabric while a dynamic fabric arbiter is attached")
	}
	if a.healthRef() != nil {
		// Quarantined partitions are parked outside the pool, so the full
		// drain below could block forever.
		return nil, fmt.Errorf("flumen: cannot re-route fabric while the health monitor is enabled")
	}
	// Take every partition out of the pool so no worker is mid-flight while
	// the fabric is re-routed; buildPartitions refills the same channel.
	for range a.partitions {
		<-a.pool
	}
	a.fabric.RoutePermutation(perm)
	counts := make([]int, len(perm))
	for src := range perm {
		counts[src], _ = a.fabric.PathMZICount(src)
	}
	// Restore the compute partitions (routing reset the fabric).
	if err := a.buildPartitions(); err != nil {
		return nil, err
	}
	return counts, nil
}

// Ports returns the fabric port count.
func (a *Accelerator) Ports() int { return a.fabric.N() }

func colsOf(m [][]float64) int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

func realDense(m [][]float64) *mat.Dense {
	d := mat.New(len(m), len(m[0]))
	for i, row := range m {
		if len(row) != len(m[0]) {
			panic("flumen: ragged matrix")
		}
		for j, v := range row {
			d.Set(i, j, complex(v, 0))
		}
	}
	return d
}

func maxAbs(xs []complex128) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(real(x)); a > m {
			m = a
		}
		if a := math.Abs(imag(x)); a > m {
			m = a
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
