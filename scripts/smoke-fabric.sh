#!/usr/bin/env bash
# fabric smoke: mixed workload reaches steady state with zero leaked
# leases and reclaim within budget.
source "$(dirname "$0")/smoke-lib.sh"

go build -o flumen-fabric ./cmd/flumen-fabric
./flumen-fabric -smoke
echo "fabric smoke: PASS"
