# Shared serve-probe-drain helpers for the CI smoke scripts.
#
# Every smoke script sources this library and gets:
#   - per-server logs under $SMOKE_LOG_DIR (uploaded as CI artifacts on
#     failure),
#   - start_server / wait_healthz / drain primitives instead of seven
#     copy-pasted polling loops,
#   - a failure trap that snapshots each live server's /debug/requests
#     ring and /metrics before reaping leftover processes, so a red smoke
#     job always leaves enough evidence to diagnose without a rerun.
#
# Usage: source "$(dirname "$0")/smoke-lib.sh"

set -euo pipefail

SMOKE_LOG_DIR="${SMOKE_LOG_DIR:-smoke-logs}"
mkdir -p "$SMOKE_LOG_DIR"

SMOKE_PIDS=()
SMOKE_NAMES=()
SMOKE_URLS=()

# start_server <name> <base-url> <cmd...>
# Launches cmd in the background with output in $SMOKE_LOG_DIR/<name>.log
# and registers it for failure dumps and cleanup. Sets SERVER_PID. Pass ""
# as base-url for processes without an HTTP surface.
start_server() {
  local name="$1" url="$2"
  shift 2
  "$@" >"$SMOKE_LOG_DIR/$name.log" 2>&1 &
  SERVER_PID=$!
  SMOKE_PIDS+=("$SERVER_PID")
  SMOKE_NAMES+=("$name")
  SMOKE_URLS+=("$url")
  echo "smoke: started $name (pid $SERVER_PID, log $SMOKE_LOG_DIR/$name.log)"
}

# wait_healthz <base-url> [grep-pattern]
# Polls <base-url>/healthz until the body matches the pattern (default: the
# ok status) or ~15s elapse.
wait_healthz() {
  local url="$1" pattern="${2:-\"status\":\"ok\"}"
  for _ in $(seq 1 75); do
    if curl -fs "$url/healthz" 2>/dev/null | grep -q "$pattern"; then
      return 0
    fi
    sleep 0.2
  done
  echo "smoke: $url/healthz never matched '$pattern'" >&2
  return 1
}

# drain <pid>
# Graceful stop: SIGTERM, then wait. The wait propagates the server's exit
# code, so a dirty drain fails the script.
drain() {
  kill -TERM "$1"
  wait "$1"
}

smoke_cleanup() {
  local rc=$? i pid
  if [ "$rc" -ne 0 ]; then
    echo "smoke: FAILED (rc=$rc) — dumping diagnostics into $SMOKE_LOG_DIR" >&2
    for i in "${!SMOKE_PIDS[@]}"; do
      local url="${SMOKE_URLS[$i]}" name="${SMOKE_NAMES[$i]}"
      if [ -n "$url" ] && kill -0 "${SMOKE_PIDS[$i]}" 2>/dev/null; then
        curl -fs "$url/debug/requests" >"$SMOKE_LOG_DIR/$name-requests.json" 2>/dev/null || true
        curl -fs "$url/metrics" >"$SMOKE_LOG_DIR/$name-metrics.txt" 2>/dev/null || true
        curl -fs "$url/healthz" >"$SMOKE_LOG_DIR/$name-healthz.json" 2>/dev/null || true
      fi
    done
  fi
  for pid in "${SMOKE_PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  exit "$rc"
}
trap smoke_cleanup EXIT
