#!/usr/bin/env bash
# registry smoke: register, restart on the same store, by-name ≡ inline
# bitwise across the restart, zero-compile warm start, flumen-util exit
# codes.
source "$(dirname "$0")/smoke-lib.sh"

go build -o flumend ./cmd/flumend
go build -o flumen-util ./cmd/flumen-util

BASE=http://127.0.0.1:8110
STORE=$(mktemp -d)
python3 - <<'EOF'
import json, random
random.seed(5)
m = [[random.uniform(-1, 1) for _ in range(16)] for _ in range(16)]
x = [[random.uniform(-1, 1) for _ in range(4)] for _ in range(16)]
json.dump({"name": "ci-w", "version": "v1", "kind": "matmul", "m": m}, open("/tmp/spec.json", "w"))
json.dump({"m": m, "x": x}, open("/tmp/inline.json", "w"))
json.dump({"model": "ci-w@v1", "x": x}, open("/tmp/byname.json", "w"))
EOF

start_server flumend-1 "$BASE" ./flumend -addr 127.0.0.1:8110 -store "$STORE" -ports 16 -block 8 -trace
PID=$SERVER_PID
wait_healthz "$BASE"

./flumen-util models register -server "$BASE" -file /tmp/spec.json
./flumen-util models list -server "$BASE" | grep -q 'ci-w@v1'
wait_healthz "$BASE" '"prewarm_pending":0'

curl -fs -X POST "$BASE/v1/matmul" -d @/tmp/inline.json > /tmp/inline_resp.json
curl -fs -X POST "$BASE/v1/matmul" -d @/tmp/byname.json > /tmp/byname_resp.json
# Unknown models must answer a structured 404 with a stable code.
curl -s -X POST "$BASE/v1/matmul" -d '{"model":"ghost","x":[[1],[2]]}' | grep -q '"code":"unknown_model"'

# Restart the daemon on the same store: the manifest reload + prewarm must
# serve the first by-name request with zero cold compiles.
drain "$PID"
start_server flumend-2 "$BASE" ./flumend -addr 127.0.0.1:8110 -store "$STORE" -ports 16 -block 8 -trace
PID=$SERVER_PID
wait_healthz "$BASE" '"registry_models":1'
wait_healthz "$BASE" '"prewarm_pending":0'

curl -fs "$BASE/metrics" | grep -q 'flumend_registry_prewarmed_models 1'
MISS_BEFORE=$(curl -fs "$BASE/metrics" | grep '^flumend_cache_misses_total' | awk '{print $2}')
curl -fs -X POST "$BASE/v1/matmul" -d @/tmp/byname.json > /tmp/warm_resp.json
MISS_AFTER=$(curl -fs "$BASE/metrics" | grep '^flumend_cache_misses_total' | awk '{print $2}')
test "$MISS_BEFORE" = "$MISS_AFTER"   # zero compiles: prewarm hit

python3 - <<'EOF'
import json, struct
want = json.load(open("/tmp/inline_resp.json"))["c"]
for path in ("/tmp/byname_resp.json", "/tmp/warm_resp.json"):
    got = json.load(open(path))["c"]
    assert len(got) == len(want), path
    for rw, rg in zip(want, got):
        for vw, vg in zip(rw, rg):
            assert struct.pack("<d", vw) == struct.pack("<d", vg), (path, vw, vg)
print("by-name responses bitwise-equal to inline, across the restart")
EOF

./flumen-util models rm -server "$BASE" ci-w@v1
set +e
./flumen-util models rm -server "$BASE" ci-w@v1   # already gone
RC=$?
set -e
test "$RC" = 3   # not-found exit code

drain "$PID"

go run -race ./cmd/flumen-bench -registry -smoke -registryout /tmp/BENCH_registry.json
echo "registry smoke: PASS"
