#!/usr/bin/env bash
# trace smoke: per-stage tracing unit tests, then a served drill asserting
# the wall-stage sums, the header opt-in, and the Prometheus exposition.
source "$(dirname "$0")/smoke-lib.sh"

go test -race ./internal/trace/
go test -race -run 'TestTraceOptIn|TestClientCancellation|TestErrorPathOutcome|TestRetryAfterSecsCeil' ./internal/serve/
go test -race -run 'TestRouterTraceRing|TestRouterDoesNotScore|TestRouterStillScores|TestRouterRetryAfter' ./internal/cluster/
go test -race -run 'TestPrewarm' ./internal/registry/

go build -o flumend ./cmd/flumend

BASE=http://127.0.0.1:8120
start_server flumend "$BASE" ./flumend -addr 127.0.0.1:8120 -trace -trace-slow 1ms
PID=$SERVER_PID
wait_healthz "$BASE"

BODY='{"m":[[1,0],[0,1]],"x":[[1],[2]]}'
for i in $(seq 1 5); do
  curl -fs -X POST "$BASE/v1/matmul" -d "$BODY" >/dev/null
done
# Header opt-in returns the breakdown in the body.
curl -fs -X POST -H 'X-Flumen-Trace: 1' "$BASE/v1/matmul" -d "$BODY" \
  | grep -q '"trace"'
# Ring: every completed trace's wall stages must sum to >=95% of its
# end-to-end total (the property that makes the breakdown trustworthy).
curl -fs "$BASE/debug/requests" > /tmp/requests.json
python3 - <<'EOF'
import json
recs = json.load(open("/tmp/requests.json"))
assert len(recs) >= 6, f"expected >=6 traced requests, got {len(recs)}"
for r in recs:
    assert r["status"] == 200, r
    assert r["stages"].get("exec", 0) > 0, r
    assert r["wall_stage_sum_ms"] >= 0.95 * r["total_ms"], r
print(f"{len(recs)} traces, all wall-stage sums >=95% of totals")
EOF
# Exposition: per-stage histograms present and populated.
curl -fs "$BASE/metrics" > /tmp/metrics.txt
grep -q 'flumend_stage_seconds_count{stage="exec"} 6' /tmp/metrics.txt
grep -q 'flumend_stage_seconds_bucket{stage="queue_wait"' /tmp/metrics.txt
grep -q 'flumend_request_outcomes_total{endpoint="matmul",outcome="ok"} 6' /tmp/metrics.txt

drain "$PID"
echo "trace smoke: PASS"
