#!/usr/bin/env bash
# cluster smoke: failover drill — SIGKILL one backend mid-traffic, verify
# ejection and a clean drain — then the cluster bench gates.
source "$(dirname "$0")/smoke-lib.sh"

go build -o flumen-router ./cmd/flumen-router
go build -o flumend ./cmd/flumend

ROUTER=http://127.0.0.1:8100
start_server node-0 http://127.0.0.1:8101 ./flumend -addr 127.0.0.1:8101 -node-id node-0 -ports 16 -block 8 -trace
B0=$SERVER_PID
start_server node-1 http://127.0.0.1:8102 ./flumend -addr 127.0.0.1:8102 -node-id node-1 -ports 16 -block 8 -trace
B1=$SERVER_PID
start_server router "$ROUTER" ./flumen-router -addr 127.0.0.1:8100 \
  -backends http://127.0.0.1:8101,http://127.0.0.1:8102 \
  -probe-interval 100ms -fail-threshold 2 -ejection-time 1s -retries 2 -trace
RT=$SERVER_PID

# Both backends visible and the fleet healthy before the drill.
wait_healthz "$ROUTER"
BODY='{"m":[[1,0],[0,1]],"x":[[1],[2]]}'
for i in $(seq 1 10); do
  curl -fs -X POST "$ROUTER/v1/matmul" -d "$BODY" | grep -q '"c"'
done

# Crash one backend the hard way and keep serving through it.
kill -KILL "$B1"
for i in $(seq 1 20); do
  curl -fs -X POST "$ROUTER/v1/matmul" -d "$BODY" | grep -q '"c"'
done
# The corpse must be ejected, the survivor still serving.
wait_healthz "$ROUTER" '"state":"ejected"'
curl -fs "$ROUTER/metrics" | grep -q 'flumen_router_requests_total'

# Graceful drain: router exits 0 on SIGTERM, then the survivor does.
drain "$RT"
drain "$B0"

go run ./cmd/flumen-bench -cluster -smoke -clusterout /tmp/BENCH_cluster.json
echo "cluster smoke: PASS"
