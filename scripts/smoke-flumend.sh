#!/usr/bin/env bash
# flumend smoke: serve, probe the core endpoints, drain cleanly.
source "$(dirname "$0")/smoke-lib.sh"

go build -o flumend ./cmd/flumend

BASE=http://127.0.0.1:8099
start_server flumend "$BASE" ./flumend -addr 127.0.0.1:8099 -trace
PID=$SERVER_PID

wait_healthz "$BASE"
curl -fs -X POST "$BASE/v1/matmul" \
  -d '{"m":[[1,0],[0,1]],"x":[[1],[2]]}' | grep -q '"c"'
curl -fs "$BASE/metrics" | grep -q 'flumend_requests_total{endpoint="matmul"} 1'

drain "$PID"   # exit 0 = clean graceful drain
echo "flumend smoke: PASS"
