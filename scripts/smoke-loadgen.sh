#!/usr/bin/env bash
# loadgen smoke: the deterministic workload generator passes bitwise
# conformance through a single flumend and through a router-fronted
# 2-backend fleet, and the gate comparator actually fails on a doctored
# baseline.
source "$(dirname "$0")/smoke-lib.sh"

go build -o flumen-loadgen ./cmd/flumen-loadgen

# Conformance straight into one flumend (self-hosted in-process).
./flumen-loadgen -mode conformance -spawn 1 -requests 120 \
  -ports 16 -block 8 -dim 16 -matrices 8

# The same invariant through the router: routing must not change a bit.
./flumen-loadgen -mode conformance -spawn 2 -requests 120 \
  -ports 16 -block 8 -dim 16 -matrices 8

# Bench + self-gate round trip, then prove the gate can fail: doctor the
# baseline's throughput 10× up and expect exit 3.
./flumen-loadgen -mode bench -spawn 1 -requests 120 \
  -ports 16 -block 8 -dim 16 -matrices 8 -out /tmp/lg-base.json
./flumen-loadgen -mode gate -baseline /tmp/lg-base.json -current /tmp/lg-base.json
python3 - <<'EOF'
import json
res = json.load(open("/tmp/lg-base.json"))
res["throughput_rps"] *= 10
json.dump(res, open("/tmp/lg-doctored.json", "w"))
EOF
set +e
./flumen-loadgen -mode gate -baseline /tmp/lg-doctored.json -current /tmp/lg-base.json
RC=$?
set -e
test "$RC" = 3   # the synthetic regression must trip the gate

echo "loadgen smoke: PASS"
