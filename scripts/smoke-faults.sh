#!/usr/bin/env bash
# faults smoke: monitored mesh holds ≤2× baseline error under drift,
# unmonitored degrades ≥10×, and serving stays 200 throughout.
source "$(dirname "$0")/smoke-lib.sh"

go run -race ./cmd/flumen-bench -faults -smoke -faultsout /tmp/BENCH_faults.json
echo "faults smoke: PASS"
