#!/usr/bin/env bash
# kernel smoke: compiled ≡ interpreted bitwise at every sweep point.
source "$(dirname "$0")/smoke-lib.sh"

go test -race -run 'Plan|ForwardBatch|MVMBatch|CompileRange|MatrixInto' ./internal/photonic/
go test -race -run 'CompiledKernels|FaultInjectionForcesFallback|KernelStats' .
go run ./cmd/flumen-bench -kernel -smoke -kernelout /tmp/BENCH_kernel.json
echo "kernel smoke: PASS"
