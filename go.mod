module flumen

go 1.22
