package flumen

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// A context cancelled before the call must stop dispatch before any work
// item runs: no programs, no batches, no energy.
func TestMatMulCtxPreCancelledRunsNoWork(t *testing.T) {
	a := newEngineAccel(t, 32, 8)
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 32, 32)
	x := randMatrix(rng, 32, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.MatMulCtx(ctx, m, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatMulCtx error = %v, want context.Canceled", err)
	}
	st := a.Stats()
	if st.Programs != 0 || st.Batches != 0 || st.EnergyPJ != 0 {
		t.Fatalf("cancelled call did work: %d programs, %d batches, %g pJ", st.Programs, st.Batches, st.EnergyPJ)
	}

	// The partition pool must be intact: a normal call still succeeds.
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatalf("MatMul after cancelled call: %v", err)
	}
	if st := a.Stats(); st.Programs == 0 {
		t.Fatal("follow-up call did no work")
	}
}

func TestMatMulCtxExpiredDeadline(t *testing.T) {
	a := newEngineAccel(t, 16, 8)
	rng := rand.New(rand.NewSource(6))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 2)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := a.MatMulCtx(ctx, m, x); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MatMulCtx error = %v, want context.DeadlineExceeded", err)
	}
	if st := a.Stats(); st.Programs != 0 {
		t.Fatalf("expired call did work: %d programs", st.Programs)
	}
}

// Serial dispatch (workers=1) checks the context between items, so a
// cancellation observed mid-call abandons the remaining work items.
func TestMatMulCtxSerialPathChecksBetweenItems(t *testing.T) {
	a := newEngineAccel(t, 32, 8)
	a.SetWorkers(1)
	rng := rand.New(rand.NewSource(7))
	// 64×64 in 8-blocks: 8×8 = 64 work items — enough that a cancellation
	// racing the call still lands before the last item with margin.
	m := randMatrix(rng, 64, 64)
	x := randMatrix(rng, 64, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.MatMulCtx(ctx, m, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatMulCtx error = %v, want context.Canceled", err)
	}
	if st := a.Stats(); st.Programs != 0 {
		t.Fatalf("cancelled serial call did work: %d programs", st.Programs)
	}
}

func TestConv2DCtxAndMatVecCtxPreCancelled(t *testing.T) {
	a := newEngineAccel(t, 16, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	input := [][][]float64{{{1, 2}, {3, 4}}}
	kernels := [][][][]float64{{{{1}}}}
	if _, err := a.Conv2DCtx(ctx, input, kernels, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Conv2DCtx error = %v, want context.Canceled", err)
	}

	m := [][]float64{{1, 0}, {0, 1}}
	if _, err := a.MatVecCtx(ctx, m, []float64{1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatVecCtx error = %v, want context.Canceled", err)
	}
	if st := a.Stats(); st.Programs != 0 {
		t.Fatalf("cancelled calls did work: %d programs", st.Programs)
	}
}

// Context plumbing must not perturb results: a MatMulCtx with a background
// context is bitwise-identical to MatMul.
func TestMatMulCtxBackgroundMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 3)

	a := newEngineAccel(t, 16, 8)
	want, err := a.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	b := newEngineAccel(t, 16, 8)
	got, err := b.MatMulCtx(context.Background(), m, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("element (%d,%d): %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
