package flumen

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"flumen/internal/fabric"
)

func fabricTestMatrices(t *testing.T, dim int) (m, x [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	m = make([][]float64, dim)
	x = make([][]float64, dim)
	for i := range m {
		m[i] = make([]float64, dim)
		x[i] = make([]float64, dim)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
			x[i][j] = rng.Float64()*2 - 1
		}
	}
	return m, x
}

func newFabricAccel(t *testing.T) (*Accelerator, *fabric.Arbiter) {
	t.Helper()
	a, err := NewAccelerator(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := fabric.New(fabric.Config{
		Partitions:        a.NumPartitions(),
		Nodes:             8,
		IdleWindow:        4,
		IdleThreshold:     0.05,
		BusyThreshold:     0.1,
		OccupancyPatience: 4,
		MinIdleCycles:     4,
		ReclaimBudget:     1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AttachFabric(arb); err != nil {
		t.Fatal(err)
	}
	return a, arb
}

func TestAttachFabricValidation(t *testing.T) {
	a, err := NewAccelerator(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AttachFabric(nil); err == nil {
		t.Error("attached nil arbiter")
	}
	wrong, _ := fabric.New(fabric.Config{Partitions: a.NumPartitions() + 1, Nodes: 4})
	if err := a.AttachFabric(wrong); err == nil {
		t.Error("attached arbiter with mismatched partition count")
	}
	right, _ := fabric.New(fabric.Config{Partitions: a.NumPartitions(), Nodes: 4})
	if err := a.AttachFabric(right); err != nil {
		t.Fatalf("valid attach failed: %v", err)
	}
	if err := a.AttachFabric(right); err == nil {
		t.Error("double attach accepted")
	}
	if a.Fabric() != right {
		t.Error("Fabric() does not return the attached arbiter")
	}
	if _, err := a.RoutePermutation(make([]int, 16)); err == nil {
		t.Error("RoutePermutation allowed while arbiter attached")
	}
	if s := a.Stats(); s.Fabric == nil || s.Fabric.Partitions != a.NumPartitions() {
		t.Errorf("Stats missing fabric snapshot: %+v", s.Fabric)
	}
}

func TestFabricIdleMatMulMatchesDedicated(t *testing.T) {
	m, x := fabricTestMatrices(t, 16)
	ded, err := NewAccelerator(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ded.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	fa, arb := newFabricAccel(t)
	got, err := fa.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, want, got)
	if st := arb.Stats(); st.ActiveLeases != 0 || st.LeasesGranted == 0 {
		t.Fatalf("lease accounting after idle MatMul: %+v", st)
	}
}

// TestFabricPreemptionBitwiseDeterminism forces repeated mid-call
// preemptions by driving busy/idle telemetry bursts while a MatMul is in
// flight, then checks the result is bit-for-bit the dedicated engine's.
func TestFabricPreemptionBitwiseDeterminism(t *testing.T) {
	// 64×64 over 4×4 blocks → 256 work items, enough in-flight work that
	// the telemetry bursts land while leases are held.
	m, x := fabricTestMatrices(t, 64)
	ded, err := NewAccelerator(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ded.SetWorkers(1)
	want, err := ded.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}

	fa, arb := newFabricAccel(t)
	type out struct {
		res [][]float64
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := fa.MatMul(m, x)
		done <- out{res, err}
	}()

	// Alternate busy bursts (forcing preemption of whatever leases are out)
	// with idle windows (letting the call resume), until it completes.
	var cycle int64
	deadline := time.After(30 * time.Second)
	for {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatal(o.err)
			}
			assertBitwiseEqual(t, want, o.res)
			st := arb.Stats()
			if st.LeasesPreempted == 0 || st.PreemptedItems == 0 {
				t.Fatalf("call completed without any forced preemption: %+v", st)
			}
			if st.ActiveLeases != 0 {
				t.Fatalf("%d leases leaked", st.ActiveLeases)
			}
			return
		case <-deadline:
			t.Fatal("preempted MatMul never completed")
		default:
		}
		for i := 0; i < 8; i++ {
			arb.Tick(cycle, 16, 8)
			cycle++
		}
		runtime.Gosched()
		for i := 0; i < 24; i++ {
			arb.Tick(cycle, 0, 0)
			cycle++
			if i%4 == 0 {
				runtime.Gosched()
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func assertBitwiseEqual(t *testing.T, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("shape mismatch: %d vs %d rows", len(want), len(got))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("result differs at (%d,%d): %v vs %v", i, j, want[i][j], got[i][j])
			}
		}
	}
}
