package flumen

import (
	"fmt"
	"math"
	"sync"

	"flumen/internal/workload"
)

// Suite holds the full benchmark × topology result grid behind
// Figs. 13-15.
type Suite struct {
	// Results[benchmark][topology].
	Results map[string]map[string]Result
	// Benchmarks in run order.
	Benchmarks []string
}

// RunSuite executes every benchmark on every topology, running the 25
// independent simulations concurrently. scale shrinks the workloads
// linearly (1 = paper scale).
func RunSuite(cfg Config, scale int) (*Suite, error) {
	s := &Suite{Results: map[string]map[string]Result{}}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	// Populate the result grid before spawning anything: the goroutines
	// index the outer map, so growing it concurrently would race.
	for _, w := range workload.ScaledAll(scale) {
		s.Benchmarks = append(s.Benchmarks, w.Name())
		s.Results[w.Name()] = map[string]Result{}
	}
	for _, bench := range s.Benchmarks {
		for _, topo := range Topologies() {
			wg.Add(1)
			// Each goroutine needs its own workload instance: op streams
			// are single-consumer. ScaledAll is cheap, so rebuild.
			go func(bench, topo string) {
				defer wg.Done()
				var w workload.Workload
				for _, cand := range workload.ScaledAll(scale) {
					if cand.Name() == bench {
						w = cand
					}
				}
				res, err := RunWorkload(w, topo, cfg)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("flumen: %s on %s: %w", bench, topo, err)
					return
				}
				s.Results[bench][topo] = res
			}(bench, topo)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// gain iterates Flumen-A gains over the reference topology.
func (s *Suite) gains(ref string, f func(fa, base Result) float64) []float64 {
	var out []float64
	for _, b := range s.Benchmarks {
		out = append(out, f(s.Results[b]["Flumen-A"], s.Results[b][ref]))
	}
	return out
}

// GeomeanSpeedup returns the Fig. 14 headline: Flumen-A speedup over the
// named topology, geometric mean across benchmarks.
func (s *Suite) GeomeanSpeedup(ref string) float64 {
	return geomean(s.gains(ref, func(fa, base Result) float64 { return fa.SpeedupOver(base) }))
}

// GeomeanEnergyGain returns the Fig. 13 headline.
func (s *Suite) GeomeanEnergyGain(ref string) float64 {
	return geomean(s.gains(ref, func(fa, base Result) float64 { return fa.EnergyGainOver(base) }))
}

// GeomeanEDPGain returns the Fig. 15 headline.
func (s *Suite) GeomeanEDPGain(ref string) float64 {
	return geomean(s.gains(ref, func(fa, base Result) float64 { return fa.EDPGainOver(base) }))
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
