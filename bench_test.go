package flumen

// This file is the benchmark harness indexed in DESIGN.md: one testing.B
// bench per table/figure of the paper's evaluation, plus ablation benches
// for the design choices DESIGN.md calls out. Each bench reports the
// figure's headline quantities as custom metrics so
// `go test -bench=. -benchmem` regenerates the evaluation in one run.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"flumen/internal/core"
	"flumen/internal/energy"
	"flumen/internal/mat"
	"flumen/internal/noc"
	"flumen/internal/optics"
	"flumen/internal/photonic"
	"flumen/internal/workload"
)

// benchWorkload returns a scaled workload (keeps bench iterations fast
// while preserving the traffic and compute shape).
func benchWorkload(b *testing.B, name string, scale int) workload.Workload {
	b.Helper()
	for _, w := range workload.ScaledAll(scale) {
		if w.Name() == name {
			return w
		}
	}
	b.Fatalf("no workload %q", name)
	return nil
}

func mustRun(b *testing.B, w workload.Workload, topo string, cfg Config) Result {
	b.Helper()
	res, err := RunWorkload(w, topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig01LinkUtilization regenerates Fig. 1: average photonic link
// utilization for Image Blur and VGG16 FC at 16/32/64 wavelengths.
func BenchmarkFig01LinkUtilization(b *testing.B) {
	for _, name := range []string{"ImageBlur", "VGG16FC"} {
		for _, lambdas := range []int{16, 32, 64} {
			b.Run(fmt.Sprintf("%s/%dlambda", name, lambdas), func(b *testing.B) {
				w := benchWorkload(b, name, 2)
				cfg := DefaultConfig()
				cfg.Wavelengths = lambdas
				var util float64
				for i := 0; i < b.N; i++ {
					util = mustRun(b, w, "Flumen-I", cfg).AvgLinkUtilization
				}
				b.ReportMetric(100*util, "util%")
			})
		}
	}
}

// BenchmarkFig11SyntheticTraffic regenerates Fig. 11: latency versus load
// for each topology and pattern at a representative moderate load.
func BenchmarkFig11SyntheticTraffic(b *testing.B) {
	np := core.DefaultNetworkParams()
	mks := []struct {
		name string
		mk   func() noc.Network
	}{
		{"Ring", func() noc.Network { return noc.NewRing(np.Nodes, np.RingWidthBits, np.BufPackets) }},
		{"Mesh", func() noc.Network { return noc.NewMesh(4, 4, np.MeshWidthBits, np.BufPackets) }},
		{"OptBus", func() noc.Network { return noc.NewOptBus(np.Nodes, np.BusChannels, np.BusWidthBits) }},
		{"Flumen", func() noc.Network { return noc.NewMZIM(np.Nodes, np.MZIMWidthBits, np.MZIMSetupCycles) }},
	}
	pats := []noc.Pattern{noc.Uniform(np.Nodes), noc.BitReversal(np.Nodes), noc.Shuffle(np.Nodes)}
	cfg := noc.DefaultRunConfig()
	cfg.MeasureCycles = 4000
	for _, m := range mks {
		for _, pat := range pats {
			b.Run(m.name+"/"+pat.Name, func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					lat = noc.RunSynthetic(m.mk(), pat, 0.02, cfg).AvgLatency
				}
				b.ReportMetric(lat, "cycles/pkt")
			})
		}
	}
}

// BenchmarkFig12aLaserPower regenerates Fig. 12a: laser power for OptBus
// and Flumen at the paper's quoted point (32 λ, 0.1 dB MRR thru loss).
func BenchmarkFig12aLaserPower(b *testing.B) {
	d := optics.DefaultDevices()
	var ob, fl float64
	for i := 0; i < b.N; i++ {
		ob = optics.OptBusLaserPowerMW(d, 16, 32, 1)
		fl = optics.FlumenLaserPowerMW(d, 16, 32, 1)
	}
	b.ReportMetric(ob, "optbus-mW")
	b.ReportMetric(fl*1000, "flumen-uW")
	b.ReportMetric(ob/fl, "ratio")
}

// BenchmarkFig12bComputeEnergy regenerates Fig. 12b: Flumen vs electrical
// MAC energy at the paper's anchor points.
func BenchmarkFig12bComputeEnergy(b *testing.B) {
	p := energy.Default()
	for _, tc := range []struct{ n, v int }{{8, 4}, {16, 8}, {64, 1}, {64, 8}} {
		b.Run(fmt.Sprintf("%dx%d-%dvec", tc.n, tc.n, tc.v), func(b *testing.B) {
			var e, f float64
			for i := 0; i < b.N; i++ {
				e = p.ElecMatMulPJ(tc.n, tc.v)
				f = p.FlumenComputePJ(tc.n, tc.v)
			}
			b.ReportMetric(e, "elec-pJ")
			b.ReportMetric(f, "flumen-pJ")
			b.ReportMetric(e/f, "gain")
		})
	}
}

// BenchmarkFig12cMACEnergy regenerates Fig. 12c: per-MAC energy across
// MZIM dimension and wavelength count.
func BenchmarkFig12cMACEnergy(b *testing.B) {
	p := energy.Default()
	for _, n := range []int{8, 16, 64} {
		for _, v := range []int{1, 8} {
			b.Run(fmt.Sprintf("dim%d-%dlambda", n, v), func(b *testing.B) {
				var e float64
				for i := 0; i < b.N; i++ {
					e = p.FlumenMACEnergyPJ(n, v)
				}
				b.ReportMetric(e*1000, "fJ/MAC")
			})
		}
	}
}

// BenchmarkFig13Energy regenerates Fig. 13: total energy per benchmark on
// Mesh and Flumen-A, reporting the energy gain.
func BenchmarkFig13Energy(b *testing.B) {
	for _, name := range Benchmarks() {
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, name, 2)
			cfg := DefaultConfig()
			var gain float64
			for i := 0; i < b.N; i++ {
				mesh := mustRun(b, w, "Mesh", cfg)
				fa := mustRun(b, w, "Flumen-A", cfg)
				gain = fa.EnergyGainOver(mesh)
			}
			b.ReportMetric(gain, "energy-gain")
		})
	}
}

// BenchmarkFig14Speedup regenerates Fig. 14: Flumen-A speedup over Mesh.
func BenchmarkFig14Speedup(b *testing.B) {
	for _, name := range Benchmarks() {
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, name, 2)
			cfg := DefaultConfig()
			var sp float64
			for i := 0; i < b.N; i++ {
				mesh := mustRun(b, w, "Mesh", cfg)
				fa := mustRun(b, w, "Flumen-A", cfg)
				sp = fa.SpeedupOver(mesh)
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkFig15EDP regenerates Fig. 15: Flumen-A EDP gain over Mesh.
func BenchmarkFig15EDP(b *testing.B) {
	for _, name := range Benchmarks() {
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, name, 2)
			cfg := DefaultConfig()
			var gain float64
			for i := 0; i < b.N; i++ {
				mesh := mustRun(b, w, "Mesh", cfg)
				fa := mustRun(b, w, "Flumen-A", cfg)
				gain = fa.EDPGainOver(mesh)
			}
			b.ReportMetric(gain, "edp-gain")
		})
	}
}

// BenchmarkSec51Area regenerates the Sec 5.1 area anchors.
func BenchmarkSec51Area(b *testing.B) {
	a := energy.DefaultArea()
	var mzim, system float64
	for i := 0; i < b.N; i++ {
		mzim = a.MZIMAreaMM2(8)
		system = a.FlumenSystemMM2(16, 8)
	}
	b.ReportMetric(mzim, "mzim8-mm2")
	b.ReportMetric(system, "system-mm2")
	b.ReportMetric(a.MZIMAreaMM2(64), "mzim64-mm2")
}

// BenchmarkSchedulerSensitivity regenerates the Sec 3.4 parameter study:
// runtime at the paper's τ=100 point versus a starved τ=800 configuration.
func BenchmarkSchedulerSensitivity(b *testing.B) {
	w := benchWorkload(b, "JPEG", 2)
	for _, tau := range []int64{25, 100, 400, 800} {
		b.Run(fmt.Sprintf("tau%d", tau), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Tau = tau
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = mustRun(b, w, "Flumen-A", cfg).Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// --- Ablation benches (DESIGN.md Sec 4) ---

// BenchmarkAblationProgramPipelining compares Flumen-A with and without
// the double-buffered phase-DAC assumption on the zero-reuse VGG16 FC
// workload, where every block requires a fresh program.
func BenchmarkAblationProgramPipelining(b *testing.B) {
	w := benchWorkload(b, "VGG16FC", 2)
	for _, disabled := range []bool{false, true} {
		name := "pipelined"
		if disabled {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.DisableProgramPipelining = disabled
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = mustRun(b, w, "Flumen-A", cfg).Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationArbiterLookahead compares the MZIM crossbar's
// saturation behaviour with FIFO head-of-line blocking (lookahead 1)
// against the default depth-2 request scan.
func BenchmarkAblationArbiterLookahead(b *testing.B) {
	cfg := noc.DefaultRunConfig()
	cfg.MeasureCycles = 4000
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("lookahead%d", k), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				net := noc.NewMZIM(16, 256, 3)
				net.SetLookahead(k)
				lat = noc.RunSynthetic(net, noc.Uniform(16), 0.12, cfg).AvgLatency
			}
			b.ReportMetric(lat, "cycles/pkt")
		})
	}
}

// BenchmarkAblationLossEqualization measures the receiver power spread of
// a routed permutation with and without the Flumen attenuator column
// (Sec 3.1.2's motivation for the added MZI column).
func BenchmarkAblationLossEqualization(b *testing.B) {
	d := optics.DefaultDevices()
	perMZI := d.MZIInsertionLossDB()
	perm := []int{3, 7, 0, 5, 1, 6, 2, 4}
	var rawSpreadDB, eqSpreadDB float64
	for i := 0; i < b.N; i++ {
		f := photonic.NewFlumenMesh(8)
		f.RoutePermutation(perm)
		minC, maxC := 1<<30, 0
		for src := 0; src < 8; src++ {
			c, _ := f.PathMZICount(src)
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		rawSpreadDB = float64(maxC-minC) * perMZI
		f.EqualizeLoss(perMZI)
		// After equalization all paths see the worst-case loss: spread 0.
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for src := 0; src < 8; src++ {
			count, dst := f.PathMZICount(src)
			in := make([]complex128, 8)
			in[src] = 1
			out := f.Forward(in)
			p := real(out[dst])*real(out[dst]) + imag(out[dst])*imag(out[dst])
			total := float64(count)*perMZI - 10*math.Log10(p)
			if total < lo {
				lo = total
			}
			if total > hi {
				hi = total
			}
		}
		eqSpreadDB = hi - lo
	}
	b.ReportMetric(rawSpreadDB, "raw-spread-dB")
	b.ReportMetric(eqSpreadDB, "equalized-spread-dB")
}

// BenchmarkAblationReckVsClements programs the same random unitary into
// the rectangular Clements mesh the paper adopts and into a triangular
// Reck mesh, comparing circuit depth (worst-case loss ∝ depth × per-MZI
// insertion loss) and the per-port device-count spread the attenuator
// column must equalize — the geometry choice DESIGN.md calls out.
func BenchmarkAblationReckVsClements(b *testing.B) {
	d := optics.DefaultDevices()
	perMZI := d.MZIInsertionLossDB()
	rng := rand.New(rand.NewSource(7))
	const n = 16
	u := mat.RandomUnitary(n, rng)
	var clemDepth, reckDepth int
	var reckSpread int
	for i := 0; i < b.N; i++ {
		clem := photonic.NewMesh(n)
		clem.ProgramUnitary(u)
		clemDepth = clem.Depth()
		reck := photonic.NewReckMesh(n)
		reck.ProgramUnitary(u)
		reckDepth = reck.Depth()
		touches := reck.WireTouches()
		minT, maxT := touches[0], touches[0]
		for _, t := range touches {
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
		reckSpread = maxT - minT
	}
	b.ReportMetric(float64(clemDepth)*perMZI, "clements-worstloss-dB")
	b.ReportMetric(float64(reckDepth)*perMZI, "reck-worstloss-dB")
	b.ReportMetric(float64(reckSpread), "reck-touch-spread")
}

// BenchmarkAblationPhaseNoise measures matrix error versus phase-noise
// sigma for a programmed 8×8 mesh — the thermal/fabrication robustness
// property Sec 6 credits MZI meshes with.
func BenchmarkAblationPhaseNoise(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	u := mat.RandomUnitary(8, rng)
	for _, sigma := range []float64{0.001, 0.01, 0.05} {
		b.Run(fmt.Sprintf("sigma%g", sigma), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				m := photonic.NewMesh(8)
				m.ProgramUnitary(u)
				m.PerturbPhases(sigma, rng)
				if d := mat.MaxAbsDiff(m.Matrix(), u); d > worst {
					worst = d
				}
			}
			b.ReportMetric(worst, "max-matrix-err")
		})
	}
}

// --- Substrate micro-benches ---

// BenchmarkClementsProgram measures programming an 8×8 unitary into a mesh
// (decomposition + placement), the per-matrix software cost of the
// simulator's compute path.
func BenchmarkClementsProgram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := mat.RandomUnitary(8, rng)
	m := photonic.NewMesh(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProgramUnitary(u)
	}
}

// BenchmarkPartitionProgram measures SVD-programming a 4-input Flumen
// partition with an arbitrary contractive matrix.
func BenchmarkPartitionProgram(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandomDense(4, 4, rng)
	a = mat.Scale(complex(0.9/mat.SpectralNorm(a), 0), a)
	f := photonic.NewFlumenMesh(8)
	p, err := f.NewPartition(0, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Program(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhotonicMVM measures one E-field forward propagation through an
// 8-input Flumen fabric.
func BenchmarkPhotonicMVM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	f := photonic.NewFlumenMesh(8)
	f.ProgramUnitary(mat.RandomUnitary(8, rng))
	in := make([]complex128, 8)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(in)
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD on an 8×8 complex matrix.
func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandomDense(8, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.SVD(a)
	}
}

// BenchmarkNoCCycle measures the cost of one simulated cycle of the MZIM
// NoP under moderate traffic.
func BenchmarkNoCCycle(b *testing.B) {
	net := noc.NewMZIM(16, 256, 3)
	rng := rand.New(rand.NewSource(5))
	var id int64
	var cycle int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rng.Float64() < 0.3 {
			src := rng.Intn(16)
			dst := rng.Intn(15)
			if dst >= src {
				dst++
			}
			net.Inject(&noc.Packet{ID: id, Src: src, Dst: dst, Bits: 640}, cycle)
			id++
		}
		net.Step(cycle)
		cycle++
	}
}

// BenchmarkFullSystemJPEG measures a complete scaled benchmark run on
// Flumen-A (the unit of work behind Figs 13-15).
func BenchmarkFullSystemJPEG(b *testing.B) {
	w := benchWorkload(b, "JPEG", 4)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, w, "Flumen-A", cfg)
	}
}

// --- Engine benches (parallel compute engine & program cache) ---

// BenchmarkEngineMatMul measures the accelerator's MatMul at 64×64 and
// 256×256 with the serial path (1 worker) versus the full partition pool,
// cache disabled so the per-block SVD + Clements cost is on the measured
// path. `cmd/flumen-bench -engine` derives the speedup table from the
// same comparison.
func BenchmarkEngineMatMul(b *testing.B) {
	for _, size := range []int{64, 256} {
		rng := rand.New(rand.NewSource(31))
		m := randMatrix(rng, size, size)
		x := randMatrix(rng, size, size)
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("%dx%d/%s", size, size, mode.name), func(b *testing.B) {
				a, err := NewAccelerator(64, 8)
				if err != nil {
					b.Fatal(err)
				}
				a.SetProgramCacheSize(0) // measure the uncached path
				if mode.workers > 0 {
					a.SetWorkers(mode.workers)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := a.MatMul(m, x); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(a.Workers()), "workers")
			})
		}
	}
}

// BenchmarkEngineConv2DCache measures a small convolution (kernel
// programming dominates) cold — cache cleared every iteration — versus
// warm, where every block program is served from the weight cache and the
// SVD + Clements decomposition is skipped.
func BenchmarkEngineConv2DCache(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	input := make([][][]float64, 3)
	for c := range input {
		input[c] = make([][]float64, 4)
		for y := range input[c] {
			input[c][y] = make([]float64, 4)
			for x := range input[c][y] {
				input[c][y][x] = rng.NormFloat64()
			}
		}
	}
	kernels := make([][][][]float64, 8)
	for k := range kernels {
		kernels[k] = make([][][]float64, 3)
		for c := range kernels[k] {
			kernels[k][c] = make([][]float64, 3)
			for y := range kernels[k][c] {
				kernels[k][c][y] = make([]float64, 3)
				for x := range kernels[k][c][y] {
					kernels[k][c][y][x] = rng.NormFloat64()
				}
			}
		}
	}
	conv := func(b *testing.B, a *Accelerator) {
		if _, err := a.Conv2D(input, kernels, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		a, err := NewAccelerator(16, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a.SetProgramCacheSize(DefaultProgramCacheSize) // clear: next call recompiles
			b.StartTimer()
			conv(b, a)
		}
	})
	b.Run("warm", func(b *testing.B) {
		a, err := NewAccelerator(16, 8)
		if err != nil {
			b.Fatal(err)
		}
		conv(b, a) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv(b, a)
		}
	})
}

// BenchmarkAblationInSituOptimization quantifies how much fidelity the
// measurement-in-the-loop optimizer ([33] Pai et al.) recovers from
// coupler-imbalanced hardware, versus open-loop Clements programming.
func BenchmarkAblationInSituOptimization(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	u := mat.RandomUnitary(8, rng)
	var before, after float64
	for i := 0; i < b.N; i++ {
		m := photonic.NewMesh(8)
		m.SetFabricationErrors(0.02, rng)
		m.ProgramUnitary(u)
		before = mat.Sub(m.Matrix(), u).FrobeniusNorm()
		after = m.InSituOptimize(u, 4)
	}
	b.ReportMetric(before, "openloop-err")
	b.ReportMetric(after, "insitu-err")
	if after > 0 {
		b.ReportMetric(before/after, "recovery")
	}
}
