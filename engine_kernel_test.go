package flumen

import (
	"math"
	"math/rand"
	"testing"

	"flumen/internal/photonic"
)

// Engine-level equivalence tests for the compiled-kernel path: the batched
// SoA propagation must reproduce the interpreted per-vector path bit for
// bit, under clean inputs, non-finite inputs, noise, fault-forced fallback
// and every worker count.

func matsBitsEqual(t *testing.T, a, b [][]float64, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: row count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: row %d length %d vs %d", label, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("%s: (%d,%d) = %v vs %v (bits differ)", label, i, j, a[i][j], b[i][j])
			}
		}
	}
}

func kernelAccel(t *testing.T, compiled bool) *Accelerator {
	t.Helper()
	a, err := NewAccelerator(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetCompiledKernels(compiled)
	return a
}

func TestCompiledKernelsMatchInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	on := kernelAccel(t, true)
	off := kernelAccel(t, false)
	for _, dims := range [][3]int{{8, 8, 1}, {16, 16, 8}, {13, 9, 5}, {24, 17, 33}} {
		m := randMatrix(rng, dims[0], dims[1])
		x := randMatrix(rng, dims[1], dims[2])
		got, err := on.MatMul(m, x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := off.MatMul(m, x)
		if err != nil {
			t.Fatal(err)
		}
		matsBitsEqual(t, got, want, "clean inputs")
	}
	stats := on.Stats()
	if stats.Kernel.PlanCompiles == 0 {
		t.Fatal("compiled path reported no plan compiles")
	}
	if s := off.Stats(); s.Kernel.PlanCompiles != 0 || s.Kernel.PlanReuses != 0 {
		t.Fatalf("interpreted path touched plans: %+v", s.Kernel)
	}
}

func TestCompiledKernelsNonFiniteInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	on := kernelAccel(t, true)
	off := kernelAccel(t, false)
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 6)
	x[3][0] = math.NaN()
	x[0][1] = math.Inf(1)
	x[9][1] = math.Inf(-1)
	x[2][2] = math.Copysign(0, -1)
	for i := range x { // column 3: all-zero (dark column, skipped entirely)
		x[i][3] = 0
	}
	for i := range x { // column 4: all-NaN (maxAbs sees 0, also skipped)
		x[i][4] = math.NaN()
	}
	got, err := on.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	matsBitsEqual(t, got, want, "non-finite inputs")
}

func TestCompiledKernelsSerialParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := kernelAccel(t, true)
	m := randMatrix(rng, 24, 24)
	x := randMatrix(rng, 24, 16)
	a.SetWorkers(1)
	serial, err := a.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	a.SetWorkers(a.NumPartitions())
	parallel, err := a.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	matsBitsEqual(t, serial, parallel, "serial vs parallel")
}

func TestCompiledKernelsNoiseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	on := kernelAccel(t, true)
	off := kernelAccel(t, false)
	on.EnableNoise(77)
	off.EnableNoise(77)
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 12)
	got, err := on.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	matsBitsEqual(t, got, want, "noisy run")
}

// TestFaultInjectionForcesFallback pins the safety rule: with a fault
// injector active the engine must run the interpreted path (the corrupted
// program is fresh per item, so a compiled plan would be both wasted work
// and a determinism hazard). Outputs must match an interpreted-only
// accelerator with identical fault state, and the fallback counter must
// record the bypass.
func TestFaultInjectionForcesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	on := kernelAccel(t, true)
	off := kernelAccel(t, false)
	for _, a := range []*Accelerator{on, off} {
		a.SetWorkers(1) // one partition serves all items → same drift sequence
		for i := 0; i < a.NumPartitions(); i++ {
			if err := a.InjectFaults(i, photonic.FaultConfig{DriftSigma: 0.02, Seed: int64(50 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 8)
	got, err := on.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.MatMul(m, x)
	if err != nil {
		t.Fatal(err)
	}
	matsBitsEqual(t, got, want, "faulty run")
	s := on.Stats()
	if s.Kernel.Fallbacks == 0 {
		t.Fatal("fault injector active but no kernel fallbacks recorded")
	}
	if s.Kernel.PlanCompiles != 0 {
		t.Fatalf("faulty items compiled plans: %+v", s.Kernel)
	}
}

func TestKernelStatsPlanReuseAndEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := kernelAccel(t, true)
	m := randMatrix(rng, 16, 16)
	x := randMatrix(rng, 16, 4)
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	first := a.Stats().Kernel
	if first.PlanCompiles == 0 {
		t.Fatal("first call compiled no plans")
	}
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	second := a.Stats().Kernel
	if second.PlanCompiles != first.PlanCompiles {
		t.Fatalf("warm weights recompiled plans: %d → %d", first.PlanCompiles, second.PlanCompiles)
	}
	if second.PlanReuses <= first.PlanReuses {
		t.Fatal("warm weights did not reuse plans")
	}

	// A capacity-1 cache thrashes: each distinct block evicts the previous
	// program together with its compiled plan.
	a.SetProgramCacheSize(1)
	if _, err := a.MatMul(m, x); err != nil {
		t.Fatal(err)
	}
	if ev := a.Stats().Kernel.PlanEvictions; ev == 0 {
		t.Fatal("thrashing cache evicted no compiled plans")
	}
}

func TestSetCompiledKernelsToggle(t *testing.T) {
	a := kernelAccel(t, true)
	if !a.CompiledKernels() {
		t.Fatal("compiled kernels should default to enabled")
	}
	a.SetCompiledKernels(false)
	if a.CompiledKernels() {
		t.Fatal("SetCompiledKernels(false) did not stick")
	}
}
